//! The full-system machine: cores, cache hierarchy, OS, secure memory.
//!
//! Trace-driven simulation: each core consumes a workload's [`Event`]
//! stream; accesses filter through private L1/L2 (and an optional shared
//! L3); misses and dirty writebacks reach the [`SecureMemory`] controller,
//! which charges verification, decryption and persistence costs on the
//! shared banked-PCM timeline. Cores advance on their own clocks and are
//! interleaved oldest-first.

use crate::config::MachineConfig;
use crate::report::SimReport;
use amnt_cache::SetAssocCache;
use amnt_core::{IntegrityError, ProtocolKind, SecureMemory};
use amnt_os::{AllocError, AllocPolicy, MemoryManager, Pid};
use amnt_workloads::{Event, EventStream};
use std::collections::BTreeMap;
use std::fmt;

/// Bytes per block.
const BLOCK: u64 = 64;
/// Bytes per page.
const PAGE: u64 = 4096;

/// Simulation failure.
#[derive(Debug)]
pub enum SimError {
    /// The secure-memory engine signalled tampering (should not happen in
    /// an attack-free simulation).
    Integrity(IntegrityError),
    /// Physical memory was exhausted (footprints exceed the device).
    OutOfMemory(AllocError),
    /// A cache configuration was invalid.
    BadConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Integrity(e) => write!(f, "integrity failure during simulation: {e}"),
            SimError::OutOfMemory(e) => write!(f, "physical memory exhausted: {e}"),
            SimError::BadConfig(s) => write!(f, "bad machine configuration: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<IntegrityError> for SimError {
    fn from(e: IntegrityError) -> Self {
        SimError::Integrity(e)
    }
}

impl From<AllocError> for SimError {
    fn from(e: AllocError) -> Self {
        SimError::OutOfMemory(e)
    }
}

struct Core {
    pid: Pid,
    gen: EventStream,
    l1: SetAssocCache,
    l2: SetAssocCache,
    clock: u64,
    roi_start_clock: u64,
    finished: bool,
}

/// The machine under simulation.
pub struct Machine {
    cfg: MachineConfig,
    cores: Vec<Core>,
    l3: Option<SetAssocCache>,
    mm: MemoryManager,
    secure: SecureMemory,
    /// Pattern counter for deterministic writeback payloads.
    write_seq: u64,
    app_instructions: u64,
    os_instructions_at_roi: u64,
    in_roi: bool,
    accesses_total: u64,
    accesses_measured: u64,
    llc_misses: u64,
    profile: Option<BTreeMap<u64, u64>>,
}

impl Machine {
    /// Builds a machine running `protocol`, with one workload event source
    /// per core (pids may repeat to model threads of one process). Accepts
    /// anything convertible into an [`EventStream`]: a live [`amnt_workloads::TraceGen`]
    /// or a recorded `Vec<Event>` for replay.
    ///
    /// # Errors
    ///
    /// [`SimError::BadConfig`] for inconsistent cache geometry or a core /
    /// workload count mismatch.
    pub fn new<S: Into<EventStream>>(
        cfg: MachineConfig,
        protocol: ProtocolKind,
        workloads: Vec<(Pid, S)>,
    ) -> Result<Self, SimError> {
        if workloads.len() != cfg.cores {
            return Err(SimError::BadConfig(format!(
                "{} workloads for {} cores",
                workloads.len(),
                cfg.cores
            )));
        }
        let mut secure = SecureMemory::new(cfg.secure.clone(), protocol)
            .map_err(|e| SimError::BadConfig(e.to_string()))?;
        if let Some(trace_cfg) = cfg.trace {
            secure.enable_tracing(trace_cfg);
        }
        let mut mm = MemoryManager::new(cfg.secure.data_capacity / PAGE, cfg.alloc_policy);
        if let Some(aging) = cfg.aging {
            mm.age(aging.seed, aging.occupancy, aging.churn);
        }
        // On an AMNT++ machine reclamation has been restructuring the free
        // lists since boot: start biased.
        mm.restructure_now();
        let l3 = match cfg.l3 {
            Some(c) => {
                Some(SetAssocCache::new(c).map_err(|e| SimError::BadConfig(e.to_string()))?)
            }
            None => None,
        };
        let mut cores = Vec::with_capacity(cfg.cores);
        for (pid, gen) in workloads {
            cores.push(Core {
                pid,
                gen: gen.into(),
                l1: SetAssocCache::new(cfg.l1d).map_err(|e| SimError::BadConfig(e.to_string()))?,
                l2: SetAssocCache::new(cfg.l2).map_err(|e| SimError::BadConfig(e.to_string()))?,
                clock: 0,
                roi_start_clock: 0,
                finished: false,
            });
        }
        Ok(Machine {
            cfg,
            cores,
            l3,
            mm,
            secure,
            write_seq: 0,
            app_instructions: 0,
            os_instructions_at_roi: 0,
            in_roi: false,
            accesses_total: 0,
            accesses_measured: 0,
            llc_misses: 0,
            profile: None,
        })
    }

    /// Enables per-physical-page access profiling (Figure 3).
    pub fn enable_profiling(&mut self) {
        self.profile = Some(BTreeMap::new());
    }

    /// Direct access to the secure-memory engine (crash drills, audits).
    pub fn secure_mut(&mut self) -> &mut SecureMemory {
        &mut self.secure
    }

    /// The OS memory manager.
    pub fn memory_manager(&self) -> &MemoryManager {
        &self.mm
    }

    fn write_payload(&mut self, paddr: u64) -> [u8; 64] {
        self.write_seq = self.write_seq.wrapping_add(1);
        let mut data = [0u8; 64];
        data[..8].copy_from_slice(&paddr.to_le_bytes());
        data[8..16].copy_from_slice(&self.write_seq.to_le_bytes());
        data[16] = 0xD7;
        data
    }

    /// A dirty line leaves the hierarchy toward memory.
    fn writeback(&mut self, now: u64, paddr: u64) -> Result<u64, SimError> {
        let data = self.write_payload(paddr);
        if let Some(p) = &mut self.profile {
            *p.entry(paddr / PAGE).or_insert(0) += 1;
        }
        Ok(self.secure.write_block(now, paddr, &data)?)
    }

    /// Fills `paddr` into the shared L3 (if present), returning the time
    /// after handling any dirty eviction.
    fn fill_l3(&mut self, mut now: u64, paddr: u64) -> Result<u64, SimError> {
        let evicted = match &mut self.l3 {
            Some(l3) => l3.fill(paddr, false),
            None => None,
        };
        if let Some(ev) = evicted {
            if ev.dirty {
                now = now.max(self.writeback(now, ev.addr)?);
            }
        }
        Ok(now)
    }

    /// Fills `paddr` into core `c`'s L2, cascading dirty victims outward.
    fn fill_l2(&mut self, mut now: u64, c: usize, paddr: u64) -> Result<u64, SimError> {
        if let Some(ev) = self.cores[c].l2.fill(paddr, false) {
            if ev.dirty {
                match &mut self.l3 {
                    Some(l3) => {
                        if l3.contains(ev.addr) {
                            l3.access(ev.addr, true);
                        } else {
                            now = self.fill_l3(now, ev.addr)?;
                            if let Some(l3) = &mut self.l3 {
                                l3.access(ev.addr, true);
                            }
                        }
                    }
                    None => {
                        now = now.max(self.writeback(now, ev.addr)?);
                    }
                }
            }
        }
        Ok(now)
    }

    /// Fills `paddr` into core `c`'s L1, cascading dirty victims to L2.
    fn fill_l1(&mut self, mut now: u64, c: usize, paddr: u64, dirty: bool) -> Result<u64, SimError> {
        if let Some(ev) = self.cores[c].l1.fill(paddr, dirty) {
            if ev.dirty {
                if self.cores[c].l2.contains(ev.addr) {
                    self.cores[c].l2.access(ev.addr, true);
                } else {
                    now = self.fill_l2(now, c, ev.addr)?;
                    self.cores[c].l2.access(ev.addr, true);
                }
            }
        }
        Ok(now)
    }

    /// One memory access through the hierarchy; returns the completion time.
    fn mem_access(
        &mut self,
        c: usize,
        paddr: u64,
        is_write: bool,
        now: u64,
    ) -> Result<u64, SimError> {
        let t = &self.cfg.timing;
        let (l1_lat, l2_lat, l3_lat) = (t.l1, t.l2, t.l3);
        let mut now = now;
        if self.cores[c].l1.access(paddr, is_write).hit {
            return Ok(now + l1_lat);
        }
        now += l1_lat;
        if self.cores[c].l2.access(paddr, false).hit {
            now += l2_lat;
            return self.fill_l1(now, c, paddr, is_write);
        }
        now += l2_lat;
        if let Some(l3) = &mut self.l3 {
            if l3.access(paddr, false).hit {
                now += l3_lat;
                now = self.fill_l2(now, c, paddr)?;
                return self.fill_l1(now, c, paddr, is_write);
            }
            now += l3_lat;
        }
        // Miss to memory.
        self.llc_misses += 1;
        if let Some(p) = &mut self.profile {
            *p.entry(paddr / PAGE).or_insert(0) += 1;
        }
        let (_data, done) = self.secure.read_block(now, paddr)?;
        now = done;
        // fill_l3 already stamps the line most-recently-used; touching it
        // again here would record a phantom L3 hit per LLC miss.
        now = self.fill_l3(now, paddr)?;
        now = self.fill_l2(now, c, paddr)?;
        self.fill_l1(now, c, paddr, is_write)
    }

    /// Flushes one virtual page of core `c`'s process from every cache
    /// level (page reclamation), writing dirty lines back.
    fn flush_page(&mut self, c: usize, paddr_page: u64) -> Result<(), SimError> {
        let base = paddr_page * PAGE;
        for i in 0..(PAGE / BLOCK) {
            let addr = base + i * BLOCK;
            let mut dirty = false;
            if let Some(d) = self.cores[c].l1.invalidate(addr) {
                dirty |= d;
            }
            if let Some(d) = self.cores[c].l2.invalidate(addr) {
                dirty |= d;
            }
            if let Some(l3) = &mut self.l3 {
                if let Some(d) = l3.invalidate(addr) {
                    dirty |= d;
                }
            }
            if dirty {
                let now = self.cores[c].clock;
                self.writeback(now, addr)?;
            }
        }
        Ok(())
    }

    fn begin_roi(&mut self) {
        self.in_roi = true;
        self.secure.reset_stats();
        for core in &mut self.cores {
            core.l1.reset_stats();
            core.l2.reset_stats();
            core.roi_start_clock = core.clock;
        }
        if let Some(l3) = &mut self.l3 {
            l3.reset_stats();
        }
        self.app_instructions = 0;
        self.os_instructions_at_roi = self.mm.instructions();
        self.llc_misses = 0;
        self.accesses_measured = 0;
        if let Some(p) = &mut self.profile {
            p.clear();
        }
    }

    /// Runs the machine until the first core exhausts its trace (the
    /// paper's multiprogram measurement window), with statistics reset
    /// after `warmup_accesses` total accesses.
    ///
    /// # Errors
    ///
    /// Propagates integrity and out-of-memory failures.
    pub fn run(&mut self, warmup_accesses: u64) -> Result<SimReport, SimError> {
        if warmup_accesses == 0 {
            self.begin_roi();
        }
        // Oldest unfinished core goes next, until a trace runs dry.
        while let Some(c) = self
            .cores
            .iter()
            .enumerate()
            .filter(|(_, core)| !core.finished)
            .min_by_key(|(_, core)| core.clock)
            .map(|(i, _)| i)
        {
            match self.cores[c].gen.next() {
                None => {
                    self.cores[c].finished = true;
                    // First finisher closes the measurement window.
                    break;
                }
                Some(Event::Unmap { vpn }) => {
                    // Figure out the physical page before unmapping.
                    let pid = self.cores[c].pid;
                    let paddr = self.mm.translate(pid, vpn * PAGE)?;
                    self.flush_page(c, paddr / PAGE)?;
                    self.mm.unmap(pid, vpn);
                }
                Some(Event::Access(op)) => {
                    let pid = self.cores[c].pid;
                    self.cores[c].clock += op.think_cycles as u64;
                    self.app_instructions += op.think_cycles as u64 + 1;
                    let paddr = self.mm.translate(pid, op.vaddr)?;
                    let done = self.mem_access(c, paddr, op.is_write, self.cores[c].clock)?;
                    self.cores[c].clock = done;
                    self.accesses_total += 1;
                    self.accesses_measured += 1;
                    if !self.in_roi && self.accesses_total >= warmup_accesses {
                        self.begin_roi();
                    }
                }
            }
        }
        Ok(self.report())
    }

    fn report(&self) -> SimReport {
        let per_core: Vec<u64> = self
            .cores
            .iter()
            .map(|c| c.clock.saturating_sub(c.roi_start_clock))
            .collect();
        let snapshot = self.secure.snapshot();
        let profile = self
            .profile
            .as_ref()
            .map(|p| p.iter().map(|(&k, &n)| (k, n)).collect::<Vec<(u64, u64)>>());
        SimReport {
            protocol: self.secure.protocol().name().to_string(),
            cycles: per_core.iter().copied().max().unwrap_or(0),
            per_core_cycles: per_core,
            accesses: self.accesses_measured,
            llc_misses: self.llc_misses,
            metadata_hit_rate: snapshot.metadata_cache.hit_rate(),
            subtree_hit_rate: snapshot.controller.subtree_hit_rate(),
            subtree_transitions: snapshot.controller.subtree_transitions,
            snapshot,
            os_instructions: self.mm.instructions() - self.os_instructions_at_roi,
            app_instructions: self.app_instructions,
            restructures: self.mm.restructures(),
            physical_profile: profile,
            core_cache_stats: self
                .cores
                .iter()
                .map(|c| (*c.l1.stats(), *c.l2.stats()))
                .collect(),
            l3_stats: self.l3.as_ref().map(|l3| *l3.stats()),
            trace: self.secure.trace_report(),
        }
    }
}

/// Derives the AMNT++ allocation policy for a machine: one subtree region
/// is the coverage of a node at `subtree_level` over the machine's memory.
pub fn amnt_plus_policy(cfg: &MachineConfig, subtree_level: u32) -> AllocPolicy {
    let geometry = amnt_bmt::BmtGeometry::new(cfg.secure.data_capacity)
        .expect("machine capacities are page-multiples");
    let level = subtree_level.clamp(1, geometry.bottom_level());
    AllocPolicy::AmntPlus {
        pages_per_region: (geometry.coverage_bytes(level) / PAGE).max(1),
        restructure_period: 64,
    }
}
