//! Experiment runners: one call per figure-style measurement.

use crate::config::MachineConfig;
use crate::machine::{amnt_plus_policy, Machine, SimError};
use crate::report::SimReport;
use amnt_core::{AmntConfig, ProtocolKind};
use amnt_workloads::{TraceGen, WorkloadModel};

/// How long measured runs are, in memory accesses per core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLength {
    /// Accesses per core after warmup.
    pub accesses: u64,
    /// Warm-up accesses (whole machine) before statistics reset.
    pub warmup: u64,
    /// Trace seed.
    pub seed: u64,
}

impl Default for RunLength {
    fn default() -> Self {
        RunLength { accesses: 200_000, warmup: 20_000, seed: 1 }
    }
}

impl RunLength {
    /// A short run for tests.
    pub fn quick() -> Self {
        RunLength { accesses: 20_000, warmup: 2_000, seed: 1 }
    }
}

/// Applies AMNT++: switches the machine's allocator policy to the biased
/// one for the protocol's subtree level. (AMNT++ = AMNT + modified OS.)
pub fn with_amnt_plus(mut cfg: MachineConfig, amnt: AmntConfig) -> MachineConfig {
    cfg.alloc_policy = amnt_plus_policy(&cfg, amnt.subtree_level);
    cfg
}

/// Runs one single-program workload under `protocol`.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn run_single(
    model: &WorkloadModel,
    cfg: MachineConfig,
    protocol: ProtocolKind,
    len: RunLength,
) -> Result<SimReport, SimError> {
    let total = len.warmup + len.accesses;
    let gen = TraceGen::new(model, len.seed, total);
    let mut machine = Machine::new(cfg, protocol, vec![(1, gen)])?;
    machine.run(len.warmup)
}

/// Runs a multiprogram pair (one benchmark per core).
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn run_pair(
    a: &WorkloadModel,
    b: &WorkloadModel,
    cfg: MachineConfig,
    protocol: ProtocolKind,
    len: RunLength,
) -> Result<SimReport, SimError> {
    if cfg.cores != 2 {
        return Err(SimError::BadConfig(format!(
            "multiprogram pair needs 2 cores, machine has {}",
            cfg.cores
        )));
    }
    let total = len.warmup / 2 + len.accesses;
    let ga = TraceGen::new(a, len.seed, total);
    let gb = TraceGen::new(b, len.seed + 17, total);
    let mut machine = Machine::new(cfg, protocol, vec![(1, ga), (2, gb)])?;
    machine.run(len.warmup)
}

/// Runs one benchmark as `cfg.cores` threads of a single process (the
/// paper's SPEC speed methodology approximated: shared address space, one
/// trace seed per thread).
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn run_multithread(
    model: &WorkloadModel,
    cfg: MachineConfig,
    protocol: ProtocolKind,
    len: RunLength,
) -> Result<SimReport, SimError> {
    let cores = cfg.cores as u64;
    let total = len.warmup / cores + len.accesses;
    let workloads = (0..cores)
        .map(|i| (1, TraceGen::new(model, len.seed + i * 101, total)))
        .collect();
    let mut machine = Machine::new(cfg, protocol, workloads)?;
    machine.run(len.warmup)
}

/// Runs a single-program workload with physical-page profiling (Fig. 3).
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn profile_single(
    model: &WorkloadModel,
    cfg: MachineConfig,
    protocol: ProtocolKind,
    len: RunLength,
) -> Result<SimReport, SimError> {
    let total = len.warmup + len.accesses;
    let gen = TraceGen::new(model, len.seed, total);
    let mut machine = Machine::new(cfg, protocol, vec![(1, gen)])?;
    machine.enable_profiling();
    machine.run(len.warmup)
}

/// Runs a multiprogram pair with physical-page profiling (Fig. 3b).
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn profile_pair(
    a: &WorkloadModel,
    b: &WorkloadModel,
    cfg: MachineConfig,
    protocol: ProtocolKind,
    len: RunLength,
) -> Result<SimReport, SimError> {
    let total = len.warmup / 2 + len.accesses;
    let ga = TraceGen::new(a, len.seed, total);
    let gb = TraceGen::new(b, len.seed + 17, total);
    let mut machine = Machine::new(cfg, protocol, vec![(1, ga), (2, gb)])?;
    machine.enable_profiling();
    machine.run(len.warmup)
}
