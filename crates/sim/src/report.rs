//! Simulation results.

use amnt_cache::CacheStats;
use amnt_core::StatsSnapshot;

/// Everything measured by one simulation run (one workload × one protocol
/// × one machine).
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Protocol name (figure-legend style: "leaf", "amnt", ...).
    pub protocol: String,
    /// Measured cycles: the slowest core's region-of-interest cycles.
    pub cycles: u64,
    /// Region-of-interest cycles per core.
    pub per_core_cycles: Vec<u64>,
    /// Memory accesses measured (post-warmup).
    pub accesses: u64,
    /// Accesses that missed the whole cache hierarchy.
    pub llc_misses: u64,
    /// Full controller/cache/timeline statistics.
    pub snapshot: StatsSnapshot,
    /// Metadata cache hit rate.
    pub metadata_hit_rate: f64,
    /// AMNT fast-subtree hit rate over data writes.
    pub subtree_hit_rate: f64,
    /// AMNT subtree-root movements.
    pub subtree_transitions: u64,
    /// Modelled OS (allocator) instructions during measurement.
    pub os_instructions: u64,
    /// Modelled application instructions during measurement.
    pub app_instructions: u64,
    /// AMNT++ restructure passes over the whole run.
    pub restructures: u64,
    /// Per-physical-page access counts, if profiling was enabled (Fig. 3).
    pub physical_profile: Option<Vec<(u64, u64)>>,
    /// Per-core (L1, L2) hit/miss statistics over the ROI.
    pub core_cache_stats: Vec<(CacheStats, CacheStats)>,
    /// Shared-L3 hit/miss statistics over the ROI, if the machine has one.
    pub l3_stats: Option<CacheStats>,
    /// Cycle-domain trace harvest, present iff the machine ran with
    /// `MachineConfig::trace` set. Never feeds the main artifact writers —
    /// exporters serialise it into separate `*.trace.json` /
    /// `*.perfetto.json` sidecars.
    pub trace: Option<amnt_trace::TraceReport>,
}

impl SimReport {
    /// Renders the report as a gem5-style `stats.txt` (key, value, comment
    /// columns) — the format the paper's artifact parses with
    /// `parse_results.py`, for drop-in tooling compatibility.
    ///
    /// ```
    /// # use amnt_sim::SimReport;
    /// # fn demo(report: &SimReport) {
    /// let stats = report.to_stats_txt();
    /// assert!(stats.contains("system.cycles"));
    /// # }
    /// ```
    pub fn to_stats_txt(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "---------- Begin Simulation Statistics ----------");
        let mut stat = |k: &str, v: String, c: &str| {
            let _ = writeln!(out, "{k:<58}{v:>20}  # {c}");
        };
        stat("system.protocol", self.protocol.clone(), "persistence protocol");
        stat("system.cycles", self.cycles.to_string(), "ROI cycles (slowest core)");
        for (i, c) in self.per_core_cycles.iter().enumerate() {
            stat(&format!("system.cpu{i}.cycles"), c.to_string(), "per-core ROI cycles");
        }
        stat("system.mem_accesses", self.accesses.to_string(), "measured accesses");
        stat("system.llc_misses", self.llc_misses.to_string(), "whole-hierarchy misses");
        stat(
            "system.mee.metadata_hit_rate",
            format!("{:.6}", self.metadata_hit_rate),
            "metadata cache hit rate",
        );
        stat(
            "system.mee.subtree_hit_rate",
            format!("{:.6}", self.subtree_hit_rate),
            "AMNT fast-subtree hit rate",
        );
        stat(
            "system.mee.subtree_transitions",
            self.subtree_transitions.to_string(),
            "AMNT subtree movements",
        );
        let c = &self.snapshot.controller;
        stat("system.mee.persist_writes", c.persist_writes.to_string(), "crash-consistency writes");
        stat("system.mee.posted_writes", c.posted_writes.to_string(), "lazy writebacks");
        stat("system.mee.hashes", c.hashes.to_string(), "HMAC computations");
        stat("system.mee.counter_overflows", c.counter_overflows.to_string(), "page re-encryptions");
        stat("system.mee.shadow_writes", c.shadow_writes.to_string(), "Anubis shadow-table writes");
        stat("system.mee.max_stale_lines", c.max_stale_lines.to_string(), "battery budget needed");
        if let Some(l3) = &self.l3_stats {
            stat("system.l3.hits", l3.hits.to_string(), "shared-L3 hits");
            stat("system.l3.misses", l3.misses.to_string(), "shared-L3 misses");
        }
        let t = &self.snapshot.timeline;
        stat("system.pcm.reads", t.reads.to_string(), "media reads");
        stat("system.pcm.writes", t.writes.to_string(), "media writes");
        stat("system.pcm.queue_stalls", t.queue_stall_cycles.to_string(), "persist queue stalls");
        stat("system.os.instructions", self.os_instructions.to_string(), "modelled allocator work");
        stat("system.app.instructions", self.app_instructions.to_string(), "modelled app work");
        let _ = writeln!(out, "---------- End Simulation Statistics   ----------");
        out
    }

    /// Cycles normalised to a baseline run (the paper normalises to the
    /// volatile secure-memory scheme).
    pub fn normalized_to(&self, baseline: &SimReport) -> f64 {
        if baseline.cycles == 0 {
            return f64::NAN;
        }
        self.cycles as f64 / baseline.cycles as f64
    }

    /// Instruction count including modelled OS work (Table 2's
    /// instruction-overhead numerator/denominator).
    pub fn total_instructions(&self) -> u64 {
        self.app_instructions + self.os_instructions
    }
}
