//! # amnt-sim
//!
//! The full-system composition: trace-driven cores with private L1/L2 (and
//! an optional shared L3), virtual→physical translation through the
//! `amnt-os` buddy allocator, and the `amnt-core` secure-memory engine at
//! the bottom. One [`Machine`] is one experiment cell; runner helpers (`run_single`, `run_pair`, `run_multithread`)
//! build the paper's single-program, multiprogram and multithreaded setups.
//!
//! ## Example
//!
//! ```
//! use amnt_core::ProtocolKind;
//! use amnt_sim::{run_single, MachineConfig, RunLength};
//! use amnt_workloads::WorkloadModel;
//!
//! let model = WorkloadModel::by_name("swaptions").unwrap();
//! let cfg = MachineConfig::parsec_single().scaled_down(256 * 1024 * 1024);
//! let report = run_single(&model, cfg, ProtocolKind::Leaf, RunLength::quick())?;
//! assert!(report.cycles > 0);
//! # Ok::<(), amnt_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod machine;
mod report;
mod runner;

pub use config::{AgingConfig, HierarchyTiming, MachineConfig};
pub use machine::{amnt_plus_policy, Machine, SimError};
pub use report::SimReport;
pub use runner::{
    profile_pair, profile_single, run_multithread, run_pair, run_single, with_amnt_plus,
    RunLength,
};
