//! Machine configurations matching the paper's evaluation setups (§6).

use amnt_cache::CacheConfig;
use amnt_core::SecureMemoryConfig;
use amnt_os::AllocPolicy;

/// Cache-hierarchy latencies in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyTiming {
    /// L1 hit latency.
    pub l1: u64,
    /// L2 hit latency.
    pub l2: u64,
    /// L3 hit latency.
    pub l3: u64,
}

impl Default for HierarchyTiming {
    fn default() -> Self {
        HierarchyTiming {
            l1: 2,
            l2: 12,
            l3: 30,
        }
    }
}

/// How the allocator is aged before measurement (long-running-system
/// fragmentation; see `amnt-os`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingConfig {
    /// RNG seed for the churn.
    pub seed: u64,
    /// Fraction of physical pages allocated during aging.
    pub occupancy: f64,
    /// Fraction of those subsequently freed (in random order).
    pub churn: f64,
}

impl Default for AgingConfig {
    fn default() -> Self {
        // A long-running machine: ~80% of memory has been allocated at
        // some point and 60% of it freed back as small clustered runs, so
        // every buddy order list holds crumbs from every subtree region
        // (locally shuffled, globally address-ordered). Fresh working sets
        // then interleave across regions at page granularity — the paper's
        // Figure 3b — while each region retains ~88 MiB of free supply for
        // the AMNT++ bias to draw on.
        AgingConfig {
            seed: 0xA6E,
            occupancy: 0.8,
            churn: 0.6,
        }
    }
}

/// A full machine: cores, hierarchy, OS policy, secure-memory engine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of cores.
    pub cores: usize,
    /// Per-core L1 data cache. (Instruction fetch is not traced; the L1I in
    /// Table 1 has no equivalent here.)
    pub l1d: CacheConfig,
    /// Per-core L2.
    pub l2: CacheConfig,
    /// Shared L3, if present.
    pub l3: Option<CacheConfig>,
    /// Hierarchy hit latencies.
    pub timing: HierarchyTiming,
    /// Secure-memory engine configuration (Table 1).
    pub secure: SecureMemoryConfig,
    /// Physical page allocation policy (Standard vs AMNT++).
    pub alloc_policy: AllocPolicy,
    /// Allocator aging before measurement; `None` = pristine machine.
    pub aging: Option<AgingConfig>,
    /// Cycle-domain tracing knobs; `None` (the default) runs untraced.
    /// Tracing is purely observational: the run's timing, statistics, and
    /// artifacts are byte-identical with it on or off.
    pub trace: Option<amnt_trace::TraceConfig>,
}

/// Applies the secure-engine environment overrides to `cfg`:
/// `AMNT_VERIFY_QUEUE` (lazy verify-queue depth; `0` restores the eager
/// per-read MAC check) and `AMNT_PREFETCH` (`1` enables the sequential
/// subtree-path prefetcher). The queue depth is a host-side batching knob
/// — artifacts are byte-identical at any setting — while prefetch changes
/// simulated timing and is therefore opt-in.
fn secure_env(mut cfg: SecureMemoryConfig) -> SecureMemoryConfig {
    if let Some(depth) = std::env::var("AMNT_VERIFY_QUEUE")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        cfg.verify_queue = depth;
    }
    if std::env::var("AMNT_PREFETCH").is_ok_and(|v| v == "1") {
        cfg.subtree_prefetch = true;
    }
    cfg
}

impl MachineConfig {
    /// Paper §6.1: single-program PARSEC machine — one core, 32 kB L1D,
    /// 1 MB L2, 8 GB PCM, Table 1 security configuration. Fresh-boot
    /// allocator, like the paper's gem5 checkpoints.
    pub fn parsec_single() -> Self {
        MachineConfig {
            cores: 1,
            l1d: CacheConfig::new(32 * 1024, 8, 64),
            l2: CacheConfig::new(1024 * 1024, 16, 64),
            l3: None,
            timing: HierarchyTiming::default(),
            secure: secure_env(SecureMemoryConfig::paper_default()),
            alloc_policy: AllocPolicy::Standard,
            aging: None,
            trace: None,
        }
    }

    /// Paper §6.2: multiprogram PARSEC machine — two cores with private
    /// 32 kB L1D and 128 kB L2, sharing a 1 MB L3.
    pub fn parsec_multi() -> Self {
        MachineConfig {
            cores: 2,
            l1d: CacheConfig::new(32 * 1024, 8, 64),
            l2: CacheConfig::new(128 * 1024, 8, 64),
            l3: Some(CacheConfig::new(1024 * 1024, 16, 64)),
            timing: HierarchyTiming::default(),
            secure: secure_env(SecureMemoryConfig::paper_default()),
            alloc_policy: AllocPolicy::Standard,
            aging: Some(AgingConfig::default()),
            trace: None,
        }
    }

    /// Paper §6.5: SPEC CPU 2017 machine — four cores, 32 kB L1D, 512 kB
    /// L2, 8 MB shared L3. One multithreaded program resumed from a
    /// SimPoint-style checkpoint: fresh-boot allocator, like the paper.
    pub fn spec_multithread() -> Self {
        MachineConfig {
            cores: 4,
            l1d: CacheConfig::new(32 * 1024, 8, 64),
            l2: CacheConfig::new(512 * 1024, 8, 64),
            l3: Some(CacheConfig::new(8 * 1024 * 1024, 16, 64)),
            timing: HierarchyTiming::default(),
            secure: secure_env(SecureMemoryConfig::paper_default()),
            alloc_policy: AllocPolicy::Standard,
            aging: None,
            trace: None,
        }
    }

    /// Shrinks the machine (memory + caches) for fast tests.
    pub fn scaled_down(mut self, data_capacity: u64) -> Self {
        self.secure = secure_env(SecureMemoryConfig::with_capacity(data_capacity));
        self
    }
}
