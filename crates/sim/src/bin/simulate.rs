//! `simulate` — run any catalogued benchmark under any persistence protocol
//! from the command line.
//!
//! ```text
//! simulate --bench lbm --protocol amnt --machine single --accesses 100000
//! simulate --bench xz --protocol strict --machine spec
//! simulate --bench dedup --record /tmp/dedup.trc        # capture a trace
//! simulate --replay /tmp/dedup.trc --protocol leaf      # replay it
//! simulate --list                                       # catalogue
//! ```

use amnt_core::{AmntConfig, AnubisConfig, BmfConfig, OsirisConfig, ProtocolKind};
use amnt_sim::{with_amnt_plus, Machine, MachineConfig, SimReport};
use amnt_workloads::{parsec, spec2017, read_trace, write_trace, Event, TraceGen, WorkloadModel};
use std::process::exit;

struct Args {
    bench: String,
    protocol: String,
    machine: String,
    accesses: u64,
    warmup: u64,
    seed: u64,
    amnt_level: u32,
    amnt_plus: bool,
    record: Option<String>,
    replay: Option<String>,
    stats_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: simulate [--bench NAME] [--protocol volatile|strict|leaf|plp|osiris|anubis|bmf|amnt]\n\
         \x20               [--machine single|multi|spec] [--accesses N] [--warmup N] [--seed N]\n\
         \x20               [--amnt-level L] [--amnt-plus] [--record FILE] [--replay FILE]\n\
         \x20               [--stats-out FILE] [--list]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        bench: "lbm".into(),
        protocol: "amnt".into(),
        machine: "single".into(),
        accesses: 100_000,
        warmup: 10_000,
        seed: 1,
        amnt_level: 3,
        amnt_plus: false,
        record: None,
        replay: None,
        stats_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage()
        });
        match flag.as_str() {
            "--bench" => args.bench = val("--bench"),
            "--protocol" => args.protocol = val("--protocol"),
            "--machine" => args.machine = val("--machine"),
            "--accesses" => args.accesses = val("--accesses").parse().unwrap_or_else(|_| usage()),
            "--warmup" => args.warmup = val("--warmup").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--amnt-level" => {
                args.amnt_level = val("--amnt-level").parse().unwrap_or_else(|_| usage())
            }
            "--amnt-plus" => args.amnt_plus = true,
            "--record" => args.record = Some(val("--record")),
            "--replay" => args.replay = Some(val("--replay")),
            "--stats-out" => args.stats_out = Some(val("--stats-out")),
            "--list" => {
                println!("PARSEC 3.0:");
                for m in parsec() {
                    println!("  {:<16} {:>5} MiB footprint, {:>2}% writes", m.name, m.footprint >> 20, (m.write_fraction * 100.0) as u32);
                }
                println!("SPEC CPU 2017:");
                for m in spec2017() {
                    println!("  {:<16} {:>5} MiB footprint, {:>2}% writes", m.name, m.footprint >> 20, (m.write_fraction * 100.0) as u32);
                }
                exit(0)
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn protocol_of(args: &Args) -> ProtocolKind {
    match args.protocol.as_str() {
        "volatile" => ProtocolKind::Volatile,
        "strict" => ProtocolKind::Strict,
        "leaf" => ProtocolKind::Leaf,
        "plp" => ProtocolKind::Plp,
        "osiris" => ProtocolKind::Osiris(OsirisConfig::default()),
        "anubis" => ProtocolKind::Anubis(AnubisConfig::default()),
        "bmf" => ProtocolKind::Bmf(BmfConfig::default()),
        "amnt" => ProtocolKind::Amnt(AmntConfig::at_level(args.amnt_level)),
        other => {
            eprintln!("unknown protocol {other}");
            usage()
        }
    }
}

fn print_report(r: &SimReport) {
    println!("protocol          {}", r.protocol);
    println!("cycles            {}", r.cycles);
    println!("accesses          {}", r.accesses);
    println!("cycles/access     {:.1}", r.cycles as f64 / r.accesses.max(1) as f64);
    println!("LLC miss rate     {:.2}%", 100.0 * r.llc_misses as f64 / r.accesses.max(1) as f64);
    println!("metadata hit rate {:.3}", r.metadata_hit_rate);
    println!("persist writes    {}", r.snapshot.controller.persist_writes);
    println!("posted writes     {}", r.snapshot.controller.posted_writes);
    if r.protocol == "amnt" {
        println!("subtree hit rate  {:.3}", r.subtree_hit_rate);
        println!("subtree moves     {}", r.subtree_transitions);
    }
    if r.snapshot.controller.shadow_writes > 0 {
        println!("shadow writes     {}", r.snapshot.controller.shadow_writes);
    }
    println!("OS instructions   {}", r.os_instructions);
}

fn main() {
    let args = parse_args();
    let protocol = protocol_of(&args);

    let mut cfg = match args.machine.as_str() {
        "single" => MachineConfig::parsec_single(),
        "multi" => MachineConfig::parsec_multi(),
        "spec" => MachineConfig::spec_multithread(),
        other => {
            eprintln!("unknown machine {other}");
            usage()
        }
    };
    if args.amnt_plus {
        cfg = with_amnt_plus(cfg, AmntConfig::at_level(args.amnt_level));
    }

    // Record mode: dump a trace and exit.
    if let Some(path) = &args.record {
        let model = WorkloadModel::by_name(&args.bench).unwrap_or_else(|| {
            eprintln!("unknown benchmark {} (try --list)", args.bench);
            exit(2)
        });
        let events: Vec<Event> =
            TraceGen::new(&model, args.seed, args.warmup + args.accesses).collect();
        let file = std::fs::File::create(path).expect("create trace file");
        write_trace(std::io::BufWriter::new(file), &events).expect("write trace");
        println!("recorded {} events to {path}", events.len());
        return;
    }

    // Event source: replayed trace or live generator.
    let report = if let Some(path) = &args.replay {
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            exit(2)
        });
        let events = read_trace(std::io::BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            exit(2)
        });
        println!("replaying {} events from {path}", events.len());
        if cfg.cores != 1 {
            eprintln!("replay currently drives a single-core machine");
            cfg = MachineConfig::parsec_single();
        }
        let mut machine = Machine::new(cfg, protocol, vec![(1, events)]).expect("machine");
        machine.run(args.warmup).expect("run")
    } else {
        // "a+b" runs a multiprogram pair (one benchmark per core).
        let names: Vec<&str> = args.bench.split('+').collect();
        let models: Vec<WorkloadModel> = names
            .iter()
            .map(|n| {
                WorkloadModel::by_name(n).unwrap_or_else(|| {
                    eprintln!("unknown benchmark {n} (try --list)");
                    exit(2)
                })
            })
            .collect();
        let cores = cfg.cores as u64;
        let total = args.warmup / cores.max(1) + args.accesses;
        let workloads: Vec<(u32, TraceGen)> = (0..cores)
            .map(|i| {
                let model = &models[i as usize % models.len()];
                let pid = if args.machine == "spec" { 1 } else { i as u32 + 1 };
                (pid, TraceGen::new(model, args.seed + i * 101, total))
            })
            .collect();
        let mut machine = Machine::new(cfg, protocol, workloads).expect("machine");
        machine.run(args.warmup).expect("run")
    };
    print_report(&report);
    if let Some(path) = &args.stats_out {
        std::fs::write(path, report.to_stats_txt()).expect("write stats file");
        println!("wrote gem5-style stats to {path}");
    }
}
