//! End-to-end baseline semantics: repeated baseline lines suppress
//! exactly N duplicate findings, and entries that no longer match are
//! reported stale. Runs the real linter over a fixture corpus (keys are
//! line-number-free, so duplicate panics in one file share one key).

use amnt_lint::{baseline, lint_corpus};

/// Two `.unwrap()` in the same crash-path file: two findings, one key.
fn duplicate_findings() -> Vec<amnt_lint::Finding> {
    let src = "fn a(x: Option<u8>) -> u8 { x.unwrap() }\n\
               fn b(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let findings = lint_corpus(&[("crates/core/src/protocol/fake.rs".to_string(), src.to_string())]);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert_eq!(findings[0].key(), findings[1].key());
    findings
}

#[test]
fn one_baseline_line_suppresses_exactly_one_duplicate() {
    let findings = duplicate_findings();
    let text = format!("# comment\n{}\n", findings[0].key());
    let (fresh, suppressed, stale) = baseline::apply(&findings, &baseline::parse(&text));
    assert_eq!(suppressed, 1);
    assert_eq!(fresh.len(), 1, "the second duplicate stays a new finding");
    assert!(stale.is_empty(), "{stale:?}");
}

#[test]
fn repeated_baseline_lines_suppress_exactly_n_duplicates() {
    let findings = duplicate_findings();
    let key = findings[0].key();
    let text = format!("{key}\n{key}\n");
    let (fresh, suppressed, stale) = baseline::apply(&findings, &baseline::parse(&text));
    assert_eq!(suppressed, 2);
    assert!(fresh.is_empty(), "{fresh:?}");
    assert!(stale.is_empty(), "{stale:?}");
}

#[test]
fn excess_and_unmatched_entries_are_stale() {
    let findings = duplicate_findings();
    let key = findings[0].key();
    // Three copies for two findings, plus an entry matching nothing.
    let text = format!("{key}\n{key}\n{key}\ncrates/x.rs · R6 · long gone\n");
    let (fresh, suppressed, stale) = baseline::apply(&findings, &baseline::parse(&text));
    assert_eq!(suppressed, 2);
    assert!(fresh.is_empty());
    assert_eq!(stale.len(), 2, "excess duplicate + unmatched entry: {stale:?}");
    assert!(stale.contains(&"crates/x.rs · R6 · long gone".to_string()));
    assert!(stale.contains(&key));
}

#[test]
fn write_baseline_roundtrip_suppresses_everything() {
    let findings = duplicate_findings();
    let rendered = baseline::render(&findings);
    let (fresh, suppressed, stale) = baseline::apply(&findings, &baseline::parse(&rendered));
    assert!(fresh.is_empty());
    assert_eq!(suppressed, 2);
    assert!(stale.is_empty());
}
