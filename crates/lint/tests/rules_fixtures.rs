//! Per-rule fixture tests: one known-bad and one known-good snippet per
//! rule, plus the tricky cases the lexer exists for (markers inside string
//! literals, doc comments, and `#[cfg(test)]` regions).
//!
//! These fixtures are fabricated in-memory with paths chosen to land inside
//! (or outside) each rule's scope; the workspace walker deliberately skips
//! `crates/lint/tests/`, so nothing here is ever linted as live code.

use amnt_lint::{lint_source, Severity};

/// Findings for `content` pretended to live at `path`, as rule ids.
fn rules_at(path: &str, content: &str) -> Vec<&'static str> {
    lint_source(path, content).into_iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- R1 ----

const R1_PATH: &str = "crates/core/src/protocol/fixture.rs";

#[test]
fn r1_flags_unwrap_on_crash_path() {
    let bad = "fn persist(x: Option<u64>) -> u64 { x.unwrap() }\n";
    let findings = lint_source(R1_PATH, bad);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "R1");
    assert_eq!(findings[0].severity, Severity::Error);
    assert_eq!(findings[0].line, 1);
}

#[test]
fn r1_flags_expect_panic_and_unreachable() {
    let bad = "fn a(x: Option<u8>) { x.expect(\"y\"); }\n\
               fn b() { panic!(\"no\"); }\n\
               fn c() { unreachable!() }\n";
    let rules = rules_at(R1_PATH, bad);
    assert_eq!(rules, vec!["R1", "R1", "R1"]);
}

#[test]
fn r1_ignores_out_of_scope_paths() {
    let bad = "fn helper(x: Option<u64>) -> u64 { x.unwrap() }\n";
    assert!(rules_at("crates/bmt/src/geometry.rs", bad).is_empty());
    assert!(rules_at("crates/lint/src/main.rs", bad).is_empty());
}

#[test]
fn r1_good_code_is_clean() {
    let good = "fn persist(x: Option<u64>) -> Result<u64, ()> { x.ok_or(()) }\n";
    assert!(rules_at(R1_PATH, good).is_empty());
}

// Tricky: the marker appears only in a string literal.
#[test]
fn r1_ignores_unwrap_inside_string_literal() {
    let src = "fn log() { let m = \"never call .unwrap() here\"; emit(m); }\n";
    assert!(rules_at(R1_PATH, src).is_empty());
}

// Tricky: the marker appears only in a doc comment.
#[test]
fn r1_ignores_unwrap_inside_doc_comment() {
    let src = "/// Prefer `?` over `.unwrap()` on this path.\nfn f() {}\n";
    assert!(rules_at(R1_PATH, src).is_empty());
}

// Tricky: the marker is real code, but inside a `#[cfg(test)]` region.
#[test]
fn r1_ignores_unwrap_inside_cfg_test() {
    let src = "fn live() -> u8 { 0 }\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn t() { Some(1u8).unwrap(); }\n\
               }\n";
    assert!(rules_at(R1_PATH, src).is_empty());
    // ... and the same call *outside* the region still fires.
    let live = format!("fn live(x: Option<u8>) {{ x.unwrap(); }}\n{src}");
    assert_eq!(rules_at(R1_PATH, &live), vec!["R1"]);
}

// ---------------------------------------------------------------- R2 ----

const R2_PATH: &str = "crates/sim/src/fixture.rs";

#[test]
fn r2_flags_wall_clock_and_os_entropy() {
    let bad = "fn now() -> u64 { let _i = Instant::now(); 0 }\n\
               fn when() { let _ = SystemTime::now(); }\n\
               fn roll() { let _ = thread_rng(); }\n";
    assert_eq!(rules_at(R2_PATH, bad), vec!["R2", "R2", "R2"]);
}

#[test]
fn r2_flags_hashmap_iteration() {
    let bad = "use std::collections::HashMap;\n\
               fn f(m: &HashMap<u64, u64>) -> u64 {\n\
               \x20   let mut s = 0;\n\
               \x20   for (_k, v) in m.iter() { s += v; }\n\
               \x20   s\n\
               }\n";
    let findings = lint_source(R2_PATH, bad);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "R2");
    assert!(findings[0].message.contains("HashMap"));
}

// Tricky: the map is iterated through a rebound local, not by name.
#[test]
fn r2_flags_iteration_through_rebound_local() {
    let bad = "use std::collections::HashMap;\n\
               struct S { map: HashMap<u64, u64> }\n\
               impl S {\n\
               \x20   fn sum(&self) -> u64 {\n\
               \x20       let p = &self.map;\n\
               \x20       p.values().sum()\n\
               \x20   }\n\
               }\n";
    let findings = lint_source(R2_PATH, bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "R2");
    assert_eq!(findings[0].line, 6);
    assert!(findings[0].message.contains("HashMap"));
}

#[test]
fn r2_rebound_local_of_btreemap_stays_clean() {
    let good = "use std::collections::BTreeMap;\n\
                struct S { map: BTreeMap<u64, u64> }\n\
                impl S {\n\
                \x20   fn sum(&self) -> u64 {\n\
                \x20       let p = &self.map;\n\
                \x20       p.values().sum()\n\
                \x20   }\n\
                }\n";
    assert!(rules_at(R2_PATH, good).is_empty());
}

#[test]
fn r2_allows_btreemap_and_keyed_lookup() {
    let good = "use std::collections::{BTreeMap, HashMap};\n\
                fn f(m: &BTreeMap<u64, u64>, h: &HashMap<u64, u64>) -> u64 {\n\
                \x20   m.values().sum::<u64>() + h.get(&1).copied().unwrap_or(0)\n\
                }\n";
    assert!(rules_at(R2_PATH, good).is_empty());
}

#[test]
fn r2_ignores_out_of_scope_paths() {
    let bad = "fn now() { let _ = Instant::now(); }\n";
    assert!(rules_at("crates/bench/src/report.rs", bad).is_empty());
}

// ---------------------------------------------------------------- R3 ----

const R3_PATH: &str = "crates/core/src/controller.rs";

#[test]
fn r3_flags_unpaired_persistent_mutation() {
    let bad = "fn store(&mut self) -> Result<(), E> {\n\
               \x20   self.nvm.write_u64(8, 1)?;\n\
               \x20   Ok(())\n\
               }\n";
    let findings = lint_source(R3_PATH, bad);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "R3");
    assert!(findings[0].message.contains("store"));
}

#[test]
fn r3_accepts_mutation_paired_with_fence() {
    let good = "fn store(&mut self) -> Result<(), E> {\n\
                \x20   self.nvm.write_u64(8, 1)?;\n\
                \x20   self.timeline.write(8);\n\
                \x20   Ok(())\n\
                }\n\
                fn snap(&mut self) {\n\
                \x20   self.snapshot_before_lazy_update(3);\n\
                \x20   self.nvm.write_block_untimed(0, &[0; 64]);\n\
                }\n";
    assert!(rules_at(R3_PATH, good).is_empty());
}

#[test]
fn r3_ignores_read_only_functions_and_other_files() {
    let good = "fn peek(&self) -> u64 { self.nvm.read_u64(8) }\n";
    assert!(rules_at(R3_PATH, good).is_empty());
    let bad = "fn store(&mut self) { self.nvm.write_u64(8, 1); }\n";
    assert!(rules_at("crates/nvm/src/device.rs", bad).is_empty());
}

// ---------------------------------------------------------------- R4 ----

#[test]
fn r4_requires_both_crate_attributes() {
    let neither = "//! Docs.\npub fn f() {}\n";
    let rules = rules_at("crates/x/src/lib.rs", neither);
    assert_eq!(rules, vec!["R4", "R4"]);

    let only_unsafe = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert_eq!(rules_at("crates/x/src/lib.rs", only_unsafe), vec!["R4"]);

    let both = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
    assert!(rules_at("crates/x/src/lib.rs", both).is_empty());
}

#[test]
fn r4_only_applies_to_lib_roots() {
    let neither = "pub fn f() {}\n";
    assert!(rules_at("crates/x/src/main.rs", neither).is_empty());
    assert!(rules_at("crates/x/src/geometry.rs", neither).is_empty());
}

// Tricky: the attribute text inside a comment must not satisfy the rule.
#[test]
fn r4_attribute_in_comment_does_not_count() {
    let sneaky = "// #![forbid(unsafe_code)]\n// #![warn(missing_docs)]\npub fn f() {}\n";
    assert_eq!(rules_at("crates/x/src/lib.rs", sneaky), vec!["R4", "R4"]);
}

// ---------------------------------------------------------------- R5 ----

const R5_PATH: &str = "crates/core/src/timing.rs";

#[test]
fn r5_flags_truncating_cast_of_cycle_counters() {
    let bad = "fn f(total_cycles: u64, t: u64) -> u32 {\n\
               \x20   (total_cycles as u32) + (t as u32)\n\
               }\n";
    let findings = lint_source(R5_PATH, bad);
    assert_eq!(findings.len(), 2);
    assert!(findings.iter().all(|f| f.rule == "R5"));
}

#[test]
fn r5_allows_wide_casts_and_non_time_idents() {
    let good = "fn f(total_cycles: u64, bank_mask: u64) -> u128 {\n\
                \x20   (total_cycles as u128) + (bank_mask as u32) as u128\n\
                }\n";
    assert!(rules_at(R5_PATH, good).is_empty());
}

#[test]
fn r5_ignores_out_of_scope_paths() {
    let bad = "fn f(total_cycles: u64) -> u32 { total_cycles as u32 }\n";
    assert!(rules_at("crates/core/src/controller.rs", bad).is_empty());
}

// ---------------------------------------------------------------- R6 ----

#[test]
fn r6_flags_unanchored_markers_in_comments() {
    let bad = "// TODO: tighten this bound\nfn f() {}\n// FIXME later\n";
    let findings = lint_source("crates/bmt/src/geometry.rs", bad);
    assert_eq!(findings.len(), 2);
    assert!(findings.iter().all(|f| f.rule == "R6" && f.severity == Severity::Warn));
}

#[test]
fn r6_accepts_anchored_markers() {
    let good = "// TODO(#123): tighten this bound\n// FIXME(AMNT-7): and this\nfn f() {}\n";
    assert!(rules_at("crates/bmt/src/geometry.rs", good).is_empty());
}

// Tricky: a marker inside a string literal is message text, not a task.
#[test]
fn r6_ignores_markers_in_string_literals() {
    let src = "fn f() -> &'static str { \"TODO: not a comment\" }\n";
    assert!(rules_at("crates/bmt/src/geometry.rs", src).is_empty());
}

#[test]
fn r6_ignores_embedded_words_like_mastodon() {
    // Marker matching is token-bounded: no substring false positives.
    let src = "// the mastodont fixmement protocol\nfn f() {}\n";
    assert!(rules_at("crates/bmt/src/geometry.rs", src).is_empty());
}

// ---------------------------------------------------------------- R7 ----

#[test]
fn r7_flags_raw_thread_spawning_everywhere_but_exec() {
    let bad = "fn go() { std::thread::spawn(|| {}); }\n\
               fn all() { std::thread::scope(|s| { let _ = s; }); }\n\
               fn named() { let _ = std::thread::Builder::new(); }\n";
    let rules = rules_at("crates/bench/src/bin/fig4_parsec_single.rs", bad);
    assert_eq!(rules, vec!["R7", "R7", "R7"]);
    // Simulation crates are no exception.
    assert_eq!(rules_at("crates/sim/src/machine.rs", bad).len(), 3);
}

#[test]
fn r7_flags_spawn_after_use_import() {
    let bad = "use std::thread;\nfn go() { thread::spawn(|| {}); }\n";
    assert_eq!(rules_at("crates/bench/src/grid.rs", bad), vec!["R7"]);
}

#[test]
fn r7_exempts_the_executor_module_and_tests() {
    let spawny = "fn pool() { std::thread::scope(|s| { let _ = s; }); }\n";
    assert!(rules_at("crates/bench/src/exec.rs", spawny).is_empty());

    let in_test = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   #[test]\n\
                   \x20   fn t() { std::thread::spawn(|| {}); }\n\
                   }\n";
    assert!(rules_at("crates/bench/src/grid.rs", in_test).is_empty());
}

// Tricky: the pattern appears only in a doc comment or string.
#[test]
fn r7_ignores_mentions_in_comments_and_strings() {
    let src = "/// Never call `thread::spawn` here; use exec::run_jobs.\n\
               fn f() -> &'static str { \"thread::scope is banned\" }\n";
    assert!(rules_at("crates/bench/src/grid.rs", src).is_empty());
}

// ---------------------------------------------------------------- R8 ----

#[test]
fn r8_flags_print_macros_in_engine_code() {
    let bad = "fn f() { println!(\"hit\"); }\n\
               fn g() { eprintln!(\"miss\"); }\n\
               fn h(x: u64) -> u64 { dbg!(x) }\n";
    for path in [
        "crates/core/src/controller.rs",
        "crates/sim/src/machine.rs",
        "crates/cache/src/lib.rs",
        "crates/nvm/src/lib.rs",
    ] {
        let findings = lint_source(path, bad);
        assert_eq!(findings.iter().filter(|f| f.rule == "R8").count(), 3, "{path}");
        assert!(findings
            .iter()
            .filter(|f| f.rule == "R8")
            .all(|f| f.severity == Severity::Error));
    }
}

#[test]
fn r8_exempts_bin_dirs_tests_and_other_crates() {
    let bad = "fn f() { println!(\"table\"); }\n";
    assert!(rules_at("crates/sim/src/bin/simulate.rs", bad).is_empty());
    assert!(rules_at("crates/bench/src/grid.rs", bad).is_empty());
    assert!(rules_at("crates/trace/src/export.rs", bad).is_empty());

    let in_test = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   #[test]\n\
                   \x20   fn t() { println!(\"debugging a test is fine\"); }\n\
                   }\n";
    assert!(rules_at("crates/core/src/controller.rs", in_test).is_empty());
}

// Tricky: `println!` quoted in a string or doc comment is message text,
// and a plain identifier named `dbg` is not the macro.
#[test]
fn r8_ignores_strings_comments_and_bare_idents() {
    let src = "/// Never `println!` here; bump a CompTrace counter.\n\
               fn f() -> &'static str { \"println! is banned\" }\n\
               fn g(dbg: u64) -> u64 { dbg + 1 }\n";
    assert!(rules_at("crates/core/src/controller.rs", src).is_empty());
}

// ----------------------------------------------------------- ordering ----

#[test]
fn findings_are_sorted_and_render_stably() {
    let bad = "// TODO no tag\nfn f(x: Option<u8>) { x.unwrap(); panic!(\"x\") }\n";
    let findings = lint_source(R1_PATH, bad);
    let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted);
    let rendered = findings[0].to_string();
    assert!(rendered.starts_with("crates/core/src/protocol/fixture.rs:"));
    assert!(rendered.contains(" · "));
}
