//! Acceptance fixtures for the interprocedural rules: R3v2 (persist/fence
//! pairing across caller paths), R1v2 (crash-path panic reachability), and
//! R9 (atomic-group bracketing).
//!
//! Each test hands [`amnt_lint::lint_corpus`] a fabricated multi-file
//! corpus; paths are chosen to land in (or out of) each rule's scope.

use amnt_lint::{lint_corpus, Finding};

fn corpus(files: &[(&str, &str)]) -> Vec<Finding> {
    let owned: Vec<(String, String)> =
        files.iter().map(|(p, c)| (p.to_string(), c.to_string())).collect();
    lint_corpus(&owned)
}

const HELPER: (&str, &str) = (
    "crates/core/src/protocol/helper.rs",
    "impl Engine {\n\
     \x20   fn store_meta(&mut self, addr: u64) {\n\
     \x20       self.dev.write_u64(addr, 7);\n\
     \x20   }\n\
     }\n",
);

const FENCED_CALLER: (&str, &str) = (
    "crates/core/src/protocol/commit.rs",
    "impl Engine {\n\
     \x20   fn commit(&mut self) {\n\
     \x20       self.store_meta(8);\n\
     \x20       self.timeline.write(1);\n\
     \x20   }\n\
     }\n",
);

#[test]
fn r3_accepts_helper_whose_only_callers_fence() {
    // The helper mutates persistent metadata without a local fence, but
    // both callers fence in the same step — accepted interprocedurally.
    let second_fenced = (
        "crates/core/src/protocol/commit_alt.rs",
        "impl Engine {\n\
         \x20   fn commit_alt(&mut self) {\n\
         \x20       self.store_meta(9);\n\
         \x20       self.timeline.reset(0);\n\
         \x20   }\n\
         }\n",
    );
    let findings = corpus(&[HELPER, FENCED_CALLER, second_fenced]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r3_flags_helper_when_one_caller_drops_its_fence() {
    // Same helper, same fenced caller — but the second caller lost its
    // fence, so one caller path can crash with the mutation unordered.
    let unfenced_caller = (
        "crates/core/src/protocol/commit_alt.rs",
        "impl Engine {\n\
         \x20   fn commit_alt(&mut self) {\n\
         \x20       self.store_meta(9);\n\
         \x20   }\n\
         }\n",
    );
    let findings = corpus(&[HELPER, FENCED_CALLER, unfenced_caller]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "R3");
    assert_eq!(findings[0].path, "crates/core/src/protocol/helper.rs");
    assert!(findings[0].message.contains("store_meta"), "{}", findings[0].message);
    assert!(findings[0].message.contains("commit_alt"), "{}", findings[0].message);
}

#[test]
fn r3_helper_with_no_callers_is_flagged_as_before() {
    // A single-file corpus reproduces the old per-function behavior: no
    // caller can vouch for the mutation.
    let findings = corpus(&[HELPER]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "R3");
    assert!(findings[0].message.contains("no callers found"), "{}", findings[0].message);
}

#[test]
fn r1_flags_unwrap_two_calls_deep_from_recover() {
    // recover -> repair -> finish; the unwrap lives two hops away, in a
    // crate that R1's per-file scope never covered.
    let findings = corpus(&[
        (
            "crates/core/src/recov.rs",
            "pub fn recover(dev: &mut Dev) -> Result<(), ()> {\n\
             \x20   repair(dev)\n\
             }\n",
        ),
        (
            "crates/bmt/src/fixup.rs",
            "pub fn repair(dev: &mut Dev) -> Result<(), ()> {\n\
             \x20   finish(dev)\n\
             }\n\
             \n\
             fn finish(dev: &mut Dev) -> Result<(), ()> {\n\
             \x20   let x: Option<u8> = None;\n\
             \x20   x.unwrap();\n\
             \x20   Ok(())\n\
             }\n",
        ),
    ]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "R1");
    assert_eq!(findings[0].path, "crates/bmt/src/fixup.rs");
    assert!(findings[0].message.contains("finish"), "{}", findings[0].message);
    assert!(findings[0].message.contains("recover"), "{}", findings[0].message);
}

#[test]
fn r9_flags_early_question_mark_between_begin_and_end() {
    let findings = corpus(&[(
        "crates/core/src/ctl.rs",
        "impl Ctl {\n\
         \x20   fn step(&mut self) -> Result<(), ()> {\n\
         \x20       self.nvm.begin_atomic();\n\
         \x20       self.risky()?;\n\
         \x20       self.nvm.end_atomic();\n\
         \x20       Ok(())\n\
         \x20   }\n\
         \x20   fn risky(&self) -> Result<(), ()> {\n\
         \x20       Ok(())\n\
         \x20   }\n\
         }\n",
    )]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "R9");
    assert!(findings[0].message.contains("early exit"), "{}", findings[0].message);
    assert!(findings[0].message.contains("step"), "{}", findings[0].message);
}

#[test]
fn r9_accepts_bracket_closed_by_every_caller() {
    // The open escalates to the caller, which closes after the call — the
    // documented cross-function bracket.
    let findings = corpus(&[
        (
            "crates/core/src/open.rs",
            "impl Ctl {\n\
             \x20   fn open_group(&mut self) {\n\
             \x20       self.nvm.begin_atomic();\n\
             \x20   }\n\
             }\n",
        ),
        (
            "crates/core/src/run.rs",
            "impl Ctl {\n\
             \x20   fn run(&mut self) {\n\
             \x20       self.open_group();\n\
             \x20       self.nvm.end_atomic();\n\
             \x20   }\n\
             }\n",
        ),
    ]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r9_flags_open_group_no_caller_closes() {
    let findings = corpus(&[
        (
            "crates/core/src/open.rs",
            "impl Ctl {\n\
             \x20   fn open_group(&mut self) {\n\
             \x20       self.nvm.begin_atomic();\n\
             \x20   }\n\
             }\n",
        ),
        (
            "crates/core/src/run.rs",
            "impl Ctl {\n\
             \x20   fn run(&mut self) {\n\
             \x20       self.open_group();\n\
             \x20   }\n\
             }\n",
        ),
    ]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "R9");
    assert_eq!(findings[0].path, "crates/core/src/open.rs");
    assert!(findings[0].message.contains("opens an atomic group"), "{}", findings[0].message);
}
