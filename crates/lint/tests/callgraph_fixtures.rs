//! Call-graph fixtures: cross-module resolution, receiver ambiguity,
//! recursion, and the documented conservative fallback for unresolved
//! calls (a possible fence for R3, reachable candidates for R1v2).

use amnt_lint::callgraph::{CallGraph, EdgeKind};
use amnt_lint::parse::parse_file;
use amnt_lint::{lint_corpus, Finding};

fn graph(files: &[(&str, &str)]) -> CallGraph {
    let mut items = Vec::new();
    for (path, src) in files {
        items.extend(parse_file(path, src));
    }
    CallGraph::build(items)
}

fn corpus(files: &[(&str, &str)]) -> Vec<Finding> {
    let owned: Vec<(String, String)> =
        files.iter().map(|(p, c)| (p.to_string(), c.to_string())).collect();
    lint_corpus(&owned)
}

fn idx(g: &CallGraph, name: &str) -> usize {
    g.fns.iter().position(|f| f.name == name).unwrap_or_else(|| panic!("no fn {name}"))
}

#[test]
fn cross_module_path_call_resolves_to_the_module_file() {
    let g = graph(&[
        ("crates/a/src/alpha.rs", "pub fn top() { beta::helper(); }\n"),
        ("crates/a/src/beta.rs", "pub fn helper() {}\n"),
    ]);
    let top = idx(&g, "top");
    let helper = idx(&g, "helper");
    assert_eq!(g.edges[top].len(), 1);
    assert_eq!(g.edges[top][0].callee, helper);
    assert_eq!(g.edges[top][0].kind, EdgeKind::Resolved);
    assert_eq!(g.callers[helper], vec![(top, g.edges[top][0].site)]);
}

#[test]
fn self_call_with_two_method_candidates_is_ambiguous_to_both() {
    // No C::act exists, so the self-call falls through to every method
    // candidate; the ambiguity policy edges to each of them.
    let g = graph(&[
        ("crates/c/src/lib.rs", "struct C;\nimpl C { fn go(&self) { self.act(); } }\n"),
        ("crates/a/src/lib.rs", "struct A;\nimpl A { fn act(&self) {} }\n"),
        ("crates/b/src/lib.rs", "struct B;\nimpl B { fn act(&self) {} }\n"),
    ]);
    let go = idx(&g, "go");
    assert_eq!(g.edges[go].len(), 2, "{:?}", g.edges[go]);
    assert!(g.edges[go].iter().all(|e| e.kind == EdgeKind::Ambiguous));
    let targets: Vec<&str> =
        g.edges[go].iter().map(|e| g.fns[e.callee].path.as_str()).collect();
    assert!(targets.contains(&"crates/a/src/lib.rs"));
    assert!(targets.contains(&"crates/b/src/lib.rs"));
}

#[test]
fn recursion_builds_and_mutually_recursive_unfenced_mutation_is_flagged() {
    // The graph tolerates cycles, and the least-fixpoint acceptance
    // correctly rejects a mutual-recursion cycle in which nobody fences:
    // `a` and `b` vouch only for each other, which proves nothing.
    let files = [(
        "crates/core/src/protocol/m.rs",
        "impl E {\n\
         \x20   fn a(&mut self) {\n\
         \x20       self.dev.write_u64(1, 2);\n\
         \x20       self.b();\n\
         \x20   }\n\
         \x20   fn b(&mut self) {\n\
         \x20       self.a();\n\
         \x20   }\n\
         }\n",
    )];
    let g = graph(&files);
    let (a, b) = (idx(&g, "a"), idx(&g, "b"));
    assert!(g.edges[a].iter().any(|e| e.callee == b));
    assert!(g.edges[b].iter().any(|e| e.callee == a));

    let findings = corpus(&files);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "R3");
    assert!(findings[0].message.contains("fn `a`"), "{}", findings[0].message);
}

#[test]
fn unresolved_self_call_counts_as_a_fence_for_r3() {
    // `self.mystery()` matches nothing in the corpus: it is recorded as an
    // unresolved self-call, and R3's under-approximation treats it as a
    // possible fence — no finding, even with no callers at all.
    let files = [(
        "crates/core/src/protocol/h.rs",
        "impl E {\n\
         \x20   fn store(&mut self) {\n\
         \x20       self.dev.write_u64(1, 2);\n\
         \x20       self.mystery();\n\
         \x20   }\n\
         }\n",
    )];
    let g = graph(&files);
    let store = idx(&g, "store");
    assert!(g.unresolved[store].iter().any(|u| u.name == "mystery" && u.self_call));

    let findings = corpus(&files);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn ambiguous_candidates_are_all_reachable_for_r1() {
    // R1's over-approximation: the entry's ambiguous `self.act()` makes
    // every candidate reachable, so the panic in `B::act` is found even
    // though resolution could not pick between A and B.
    let findings = corpus(&[
        (
            "crates/core/src/rec2.rs",
            "impl Ctl {\n\
             \x20   fn recover(&mut self) {\n\
             \x20       self.act();\n\
             \x20   }\n\
             }\n",
        ),
        ("crates/cache/src/a.rs", "struct A;\nimpl A {\n    fn act(&self) {}\n}\n"),
        (
            "crates/cache/src/b.rs",
            "struct B;\nimpl B {\n\
             \x20   fn act(&self) {\n\
             \x20       let x: Option<u8> = None;\n\
             \x20       x.unwrap();\n\
             \x20   }\n\
             }\n",
        ),
    ]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "R1");
    assert_eq!(findings[0].path, "crates/cache/src/b.rs");
    assert!(findings[0].message.contains("recover"), "{}", findings[0].message);
}

#[test]
fn dump_shows_resolution_classes() {
    let g = graph(&[
        ("crates/c/src/lib.rs", "struct C;\nimpl C { fn go(&self) { self.act(); self.ext(); } }\n"),
        ("crates/a/src/lib.rs", "struct A;\nimpl A { fn act(&self) {} }\n"),
        ("crates/b/src/lib.rs", "struct B;\nimpl B { fn act(&self) {} }\n"),
    ]);
    let d = g.dump();
    assert!(d.contains("~> crates/a/src/lib.rs::A::act"), "{d}");
    assert!(d.contains("~> crates/b/src/lib.rs::B::act"), "{d}");
    assert!(d.contains("?? self.ext (external)"), "{d}");
}
