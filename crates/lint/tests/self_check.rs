//! The gate applied to the gate's own workspace: linting the live tree
//! (minus the checked-in baseline) must produce zero new findings. This is
//! the test-suite twin of `cargo run -p amnt-lint` exiting 0, so `cargo
//! test` alone catches a regression in either the tree or the rules.

use amnt_lint::{baseline, lint_workspace};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/lint/ -> crates/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate lives two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn live_workspace_has_no_new_findings() {
    let root = workspace_root();
    assert!(root.join("Cargo.toml").exists(), "bad root: {}", root.display());

    let findings = lint_workspace(&root).expect("workspace scan");
    let baseline_text =
        std::fs::read_to_string(root.join("lint-baseline.txt")).unwrap_or_default();
    let (fresh, _suppressed, _stale) = baseline::apply(&findings, &baseline::parse(&baseline_text));

    assert!(
        fresh.is_empty(),
        "new lint findings in the live workspace:\n{}",
        fresh.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}

#[test]
fn walker_discovers_the_known_crates() {
    let root = workspace_root();
    let files = amnt_lint::collect_files(&root).expect("walk");
    let rels: Vec<&str> = files.iter().map(|(rel, _)| rel.as_str()).collect();
    for expected in [
        "crates/core/src/controller.rs",
        "crates/core/src/protocol/bmf.rs",
        "crates/sim/src/machine.rs",
        "crates/lint/src/rules.rs",
        "src/lib.rs",
    ] {
        assert!(rels.contains(&expected), "walker missed {expected}");
    }
    // Fixture directories must stay out of the live scan.
    assert!(
        !rels.iter().any(|r| r.starts_with("crates/lint/tests/")),
        "lint fixtures must not be linted as live code"
    );
}
