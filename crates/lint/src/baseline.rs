//! The checked-in allowlist (`lint-baseline.txt`).
//!
//! Each non-comment line is a finding *key* — `path · RULE · message`,
//! deliberately line-number-free so unrelated edits that shift code don't
//! invalidate the allowlist. The gate fails only on findings whose key is
//! not in the baseline; baseline entries that no longer match anything are
//! reported as stale (non-fatal) so the file shrinks over time.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// Parses baseline text into a key → allowed-count multiset. `#` comments
/// and blank lines are ignored. Duplicate keys allow duplicate findings
/// (one entry suppresses one finding).
pub fn parse(text: &str) -> BTreeMap<String, usize> {
    let mut keys = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        *keys.entry(line.to_string()).or_insert(0) += 1;
    }
    keys
}

/// Splits findings against a baseline: (new findings, suppressed count,
/// stale baseline keys).
pub fn apply(
    findings: &[Finding],
    baseline: &BTreeMap<String, usize>,
) -> (Vec<Finding>, usize, Vec<String>) {
    let mut budget = baseline.clone();
    let mut fresh = Vec::new();
    let mut suppressed = 0usize;
    for f in findings {
        match budget.get_mut(&f.key()) {
            Some(n) if *n > 0 => {
                *n -= 1;
                suppressed += 1;
            }
            _ => fresh.push(f.clone()),
        }
    }
    let stale: Vec<String> =
        budget.into_iter().filter(|&(_, n)| n > 0).map(|(k, _)| k).collect();
    (fresh, suppressed, stale)
}

/// Renders findings as baseline text (sorted, deduplicated-with-counts).
pub fn render(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for f in findings {
        *counts.entry(f.key()).or_insert(0) += 1;
    }
    let mut out = String::from(
        "# amnt-lint baseline: one `path · RULE · message` key per line.\n\
         # Entries suppress exactly one matching finding each (repeat a line\n\
         # to allow duplicates). Regenerate with: cargo run -p amnt-lint -- --write-baseline\n",
    );
    for (key, n) in counts {
        for _ in 0..n {
            out.push_str(&key);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn f(path: &str, msg: &str) -> Finding {
        Finding {
            path: path.into(),
            line: 1,
            rule: "R1",
            severity: Severity::Error,
            message: msg.into(),
        }
    }

    #[test]
    fn baseline_suppresses_exact_keys_and_reports_stale() {
        let findings = vec![f("a.rs", "x"), f("a.rs", "x"), f("b.rs", "y")];
        let text = "# comment\na.rs · R1 · x\nc.rs · R1 · gone\n";
        let (fresh, suppressed, stale) = apply(&findings, &parse(text));
        assert_eq!(suppressed, 1, "one entry suppresses one of two duplicates");
        assert_eq!(fresh.len(), 2);
        assert_eq!(stale, vec!["c.rs · R1 · gone".to_string()]);
    }

    #[test]
    fn render_roundtrips_through_parse() {
        let findings = vec![f("a.rs", "x"), f("a.rs", "x"), f("b.rs", "y")];
        let parsed = parse(&render(&findings));
        assert_eq!(parsed.get("a.rs · R1 · x"), Some(&2));
        assert_eq!(parsed.get("b.rs · R1 · y"), Some(&1));
        let (fresh, suppressed, stale) = apply(&findings, &parsed);
        assert!(fresh.is_empty());
        assert_eq!(suppressed, 3);
        assert!(stale.is_empty());
    }
}
