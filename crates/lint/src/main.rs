//! The `amnt-lint` command-line gate.
//!
//! ```text
//! amnt-lint [--root DIR] [--baseline FILE] [--write-baseline]
//!           [--json FILE] [--dump-callgraph]
//!           [--explain RULE_ID] [--list-rules]
//! ```
//!
//! Exit codes: 0 = clean (or fully baselined), 1 = new findings,
//! 2 = usage or I/O error.

#![forbid(unsafe_code)]

use amnt_lint::{baseline, callgraph::CallGraph, find_root, json, lint_corpus, parse, read_corpus,
    rule_info, RULES};
use std::path::PathBuf;

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

fn run(args: Vec<String>) -> i32 {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut dump_callgraph = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a file"),
            },
            "--json" => match it.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => return usage("--json needs a file"),
            },
            "--write-baseline" => write_baseline = true,
            "--dump-callgraph" => dump_callgraph = true,
            "--list-rules" => {
                for r in RULES {
                    println!("{} · {} · {}", r.id, r.severity, r.summary);
                }
                return 0;
            }
            "--explain" => {
                return match it.next().as_deref().and_then(rule_info) {
                    Some(r) => {
                        println!("{} ({}): {}\n\n{}", r.id, r.severity, r.summary, r.explanation);
                        0
                    }
                    None => usage("--explain needs a rule id (R1..R9)"),
                };
            }
            "--help" | "-h" => {
                println!(
                    "amnt-lint: workspace crash-path and determinism gate\n\n\
                     usage: amnt-lint [--root DIR] [--baseline FILE] [--write-baseline]\n\
                     \x20                [--json FILE] [--dump-callgraph]\n\
                     \x20                [--explain RULE_ID] [--list-rules]"
                );
                return 0;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir().ok().and_then(|d| find_root(&d)).or_else(|| {
            // When run via `cargo run -p amnt-lint` the cwd is already in
            // the workspace, but fall back to the build-time location too.
            find_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR")))
        })
    }) {
        Some(r) => r,
        None => return usage("no workspace root found; pass --root"),
    };

    let corpus = match read_corpus(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("amnt-lint: scan failed: {e}");
            return 2;
        }
    };

    if dump_callgraph {
        let mut items = Vec::new();
        for (rel, content) in &corpus {
            items.extend(parse::parse_file(rel, content));
        }
        print!("{}", CallGraph::build(items).dump());
        return 0;
    }

    let findings = lint_corpus(&corpus);

    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));
    if write_baseline {
        if let Err(e) = std::fs::write(&baseline_path, baseline::render(&findings)) {
            eprintln!("amnt-lint: cannot write {}: {e}", baseline_path.display());
            return 2;
        }
        println!(
            "amnt-lint: wrote {} entries to {}",
            findings.len(),
            baseline_path.display()
        );
        return 0;
    }

    let allow = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => baseline::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Default::default(),
        Err(e) => {
            eprintln!("amnt-lint: cannot read {}: {e}", baseline_path.display());
            return 2;
        }
    };
    let (fresh, suppressed, stale) = baseline::apply(&findings, &allow);

    if let Some(path) = json_path {
        let written = match path.parent() {
            Some(dir) if !dir.as_os_str().is_empty() => std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(&path, json::render(&fresh, suppressed, &stale))),
            _ => std::fs::write(&path, json::render(&fresh, suppressed, &stale)),
        };
        if let Err(e) = written {
            eprintln!("amnt-lint: cannot write {}: {e}", path.display());
            return 2;
        }
    }

    for f in &fresh {
        println!("{f}");
    }
    for key in &stale {
        eprintln!("amnt-lint: stale baseline entry (no longer matches): {key}");
    }
    println!(
        "amnt-lint: {} new finding{}, {suppressed} baselined, {} stale baseline entr{}",
        fresh.len(),
        if fresh.len() == 1 { "" } else { "s" },
        stale.len(),
        if stale.len() == 1 { "y" } else { "ies" },
    );
    if fresh.is_empty() {
        0
    } else {
        1
    }
}

fn usage(msg: &str) -> i32 {
    eprintln!("amnt-lint: {msg} (try --help)");
    2
}
