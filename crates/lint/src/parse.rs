//! The parse layer: `fn` items and their call sites, extracted from
//! masked source.
//!
//! This sits between the lexer ([`crate::lexer`], which blanks comments
//! and strings) and the interprocedural rules ([`crate::callgraph`],
//! [`crate::dataflow`]). It is still *not* a Rust parser — it recognises
//! exactly the shapes the rules need:
//!
//! * `fn` items with their body spans and 1-indexed lines, including
//!   nested functions (each as its own item);
//! * the enclosing `impl` block's target type (the *receiver type hint*
//!   used by call resolution — `impl Display for Severity` hints
//!   `Severity`, `impl SecureMemory` hints `SecureMemory`);
//! * whether the function takes a `self` receiver;
//! * every call site in the body, classified by receiver shape
//!   ([`Receiver`]): `self.f(..)`, `self.field.f(..)`, `local.f(..)`,
//!   `Type::f(..)`, `expr.f(..)`, or bare `f(..)`;
//! * the body's `let`-binding types ([`FnItem::locals`]): `let c:
//!   Controller = ..` and `let c = Controller::new(..)` both pin `c` to
//!   `Controller`, so a later `c.step(..)` resolves on that type alone
//!   instead of falling back to the name-containment heuristic. A name
//!   re-bound at *different* types is dropped from the table (shadowing
//!   makes any single answer wrong somewhere in the body).
//!
//! Functions inside `#[cfg(test)]` regions are marked [`FnItem::in_test`]
//! and excluded from the call graph by [`crate::callgraph::CallGraph`].

use crate::lexer::{cfg_test_ranges, is_ident_byte, line_of, line_starts, mask, token_offsets};
use std::collections::BTreeMap;

/// How a call site names its receiver. Resolution treats each shape
/// differently (see `crate::callgraph` for the full policy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `self.f(..)` — a method call on the current object.
    SelfDot,
    /// `a.ident.f(..)` — a method call on a projected field (the field
    /// name is the receiver type hint).
    Field(String),
    /// `ident.f(..)` with nothing before `ident` — a method call on a
    /// body-level binding; [`FnItem::locals`] may pin its exact type.
    Local(String),
    /// `Type::f(..)` or `module::f(..)` — a path call; the last path
    /// segment before the function name is kept.
    Path(String),
    /// `<expr>.f(..)` — a method call on an unnamed expression
    /// (e.g. `a.b().f(..)`).
    Expr,
    /// `f(..)` — a bare call.
    Bare,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// Receiver shape.
    pub recv: Receiver,
    /// Absolute byte offset of the callee name in the masked file.
    pub offset: usize,
}

/// One `fn` item: identity, span, receiver hints, and call sites.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Repo-relative path of the defining file (forward slashes).
    pub path: String,
    /// Function name.
    pub name: String,
    /// Target type of the innermost enclosing `impl` (or `trait`) block,
    /// if any.
    pub impl_type: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Byte offset of the `fn` keyword in the masked file.
    pub start: usize,
    /// Byte offset of the body's opening `{`.
    pub body_start: usize,
    /// Byte offset one past the body's closing `}`.
    pub end: usize,
    /// Whether the parameter list starts with a `self` receiver.
    pub has_receiver: bool,
    /// Whether the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Call sites in the body, in textual order. Calls inside *nested*
    /// `fn` items are attributed to the nested item, not this one.
    pub calls: Vec<CallSite>,
    /// `let`-binding name → simple type name, from annotations
    /// (`let c: Controller`) and path-constructor initialisers
    /// (`let c = Controller::new(..)`, `let c = Controller { .. }`).
    /// Names re-bound at conflicting types are absent.
    pub locals: BTreeMap<String, String>,
    /// The masked body text (`{` to `}` inclusive), for feature scans.
    pub body: String,
}

impl FnItem {
    /// `path::Type::name` or `path::name` — the stable display identity
    /// used by `--dump-callgraph` and finding messages.
    pub fn display_id(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{}::{}::{}", self.path, t, self.name),
            None => format!("{}::{}", self.path, self.name),
        }
    }
}

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: [&str; 16] = [
    "if", "else", "match", "while", "for", "loop", "return", "fn", "in", "as", "let", "move",
    "mut", "ref", "where", "impl",
];

/// Bare "calls" that are really ubiquitous enum constructors; skipping
/// them keeps the unresolved-site list signal-bearing.
const CONSTRUCTOR_NAMES: [&str; 3] = ["Some", "Ok", "Err"];

/// Parses one file into its `fn` items. `path` is the repo-relative path
/// (it only labels the items; no filesystem access happens here).
pub fn parse_file(path: &str, content: &str) -> Vec<FnItem> {
    let masked = mask(content);
    parse_masked(path, &masked)
}

/// [`parse_file`] over already-masked source.
pub fn parse_masked(path: &str, masked: &str) -> Vec<FnItem> {
    let starts = line_starts(masked);
    let test_ranges = cfg_test_ranges(masked);
    let impls = impl_spans(masked);
    let raw = raw_fn_spans(masked);
    let mut items = Vec::with_capacity(raw.len());
    for span in &raw {
        let line = line_of(&starts, span.start);
        let in_test = test_ranges.iter().any(|&(a, b)| line >= a && line <= b);
        let impl_type = impls
            .iter()
            .filter(|(a, b, _)| *a < span.start && span.end <= *b)
            .min_by_key(|(a, b, _)| b - a)
            .map(|(_, _, t)| t.clone());
        // Nested fn spans strictly inside this one own their own text.
        let nested: Vec<(usize, usize)> = raw
            .iter()
            .filter(|o| o.start > span.start && o.end <= span.end)
            .map(|o| (o.start, o.end))
            .collect();
        let calls = call_sites(masked, span.body_start, span.end, &nested);
        let locals = local_bindings(masked, span.body_start, span.end, &nested);
        items.push(FnItem {
            path: path.to_string(),
            name: span.name.clone(),
            impl_type,
            line,
            start: span.start,
            body_start: span.body_start,
            end: span.end,
            has_receiver: span.has_receiver,
            in_test,
            calls,
            locals,
            body: masked[span.body_start..span.end].to_string(),
        });
    }
    items
}

struct RawFnSpan {
    name: String,
    start: usize,
    body_start: usize,
    end: usize,
    has_receiver: bool,
}

/// Every `fn` item with a body: name, header, and body span. Bodyless
/// declarations (trait method signatures) are skipped.
fn raw_fn_spans(masked: &str) -> Vec<RawFnSpan> {
    let bytes = masked.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 2 <= bytes.len() {
        if &bytes[i..i + 2] == b"fn"
            && (i == 0 || !is_ident_byte(bytes[i - 1]))
            && (i + 2 == bytes.len() || !is_ident_byte(bytes[i + 2]))
        {
            let mut j = i + 2;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            let name_start = j;
            while j < bytes.len() && is_ident_byte(bytes[j]) {
                j += 1;
            }
            if j == name_start {
                i += 2;
                continue; // `Fn()` trait sugar, not an item
            }
            let name = masked[name_start..j].to_string();
            // Parameter list: the first `(` at angle-depth 0 (generics may
            // precede it).
            let mut angle = 0i64;
            let mut params_start = None;
            while j < bytes.len() {
                match bytes[j] {
                    b'<' => angle += 1,
                    b'>' => angle -= 1,
                    b'(' if angle <= 0 => {
                        params_start = Some(j);
                        break;
                    }
                    b'{' | b';' => break,
                    _ => {}
                }
                j += 1;
            }
            let has_receiver = match params_start {
                Some(p) => {
                    let close = matching_paren(bytes, p);
                    j = close;
                    leading_self_receiver(&masked[p + 1..close.min(masked.len())])
                }
                None => false,
            };
            // Body `{` outside any parens/brackets, or `;` for bodyless fns.
            let mut depth = 0i64;
            let mut body = None;
            while j < bytes.len() {
                match bytes[j] {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b'{' if depth <= 0 => {
                        body = Some(j);
                        break;
                    }
                    b';' if depth <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = body {
                let mut k = open;
                let mut bd = 0i64;
                while k < bytes.len() {
                    match bytes[k] {
                        b'{' => bd += 1,
                        b'}' => {
                            bd -= 1;
                            if bd == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                spans.push(RawFnSpan {
                    name,
                    start: i,
                    body_start: open,
                    end: (k + 1).min(bytes.len()),
                    has_receiver,
                });
            }
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

/// Offset one past the `)` matching the `(` at `open` (or the end of
/// input, for unbalanced text).
fn matching_paren(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0i64;
    let mut k = open;
    while k < bytes.len() {
        match bytes[k] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    bytes.len()
}

/// Whether a parameter-list body starts with a `self` receiver
/// (`self`, `mut self`, `&self`, `&mut self`, `&'a self`, ...).
fn leading_self_receiver(params: &str) -> bool {
    let mut rest = params.trim_start();
    if let Some(r) = rest.strip_prefix('&') {
        rest = r.trim_start();
        if rest.starts_with('\'') {
            // Lifetime: skip `'ident`.
            rest = &rest[1..];
            let n = rest.bytes().take_while(|&b| is_ident_byte(b)).count();
            rest = rest[n..].trim_start();
        }
    }
    if let Some(r) = rest.strip_prefix("mut") {
        if r.starts_with(|c: char| c.is_whitespace()) {
            rest = r.trim_start();
        }
    }
    rest == "self"
        || rest.starts_with("self,")
        || rest.starts_with("self ")
        || rest.starts_with("self\n")
        || rest.starts_with("self:")
}

/// The spans and target-type names of `impl` (and `trait`) blocks.
/// Returns `(body_open, body_close, type_name)` triples.
fn impl_spans(masked: &str) -> Vec<(usize, usize, String)> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for kw in ["impl", "trait"] {
        for at in token_offsets(masked, kw) {
            let mut j = at + kw.len();
            // Skip generic parameters on the keyword itself.
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'<' {
                let mut depth = 0i64;
                while j < bytes.len() {
                    match bytes[j] {
                        b'<' => depth += 1,
                        b'>' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            // Read to the body `{`, remembering the text after a `for` if
            // one appears (`impl Trait for Type`).
            let head_start = j;
            let mut for_at = None;
            let mut open = None;
            let mut angle = 0i64;
            while j < bytes.len() {
                match bytes[j] {
                    b'<' => angle += 1,
                    b'>' => angle -= 1,
                    b'{' if angle <= 0 => {
                        open = Some(j);
                        break;
                    }
                    b';' if angle <= 0 => break,
                    b'f' if angle <= 0
                        && masked[j..].starts_with("for")
                        && !is_ident_byte(bytes[j.saturating_sub(1)])
                        && !is_ident_byte(*bytes.get(j + 3).unwrap_or(&b' ')) =>
                    {
                        for_at = Some(j);
                    }
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = open else { continue };
            let head = match for_at {
                Some(f) => &masked[f + 3..open],
                None => &masked[head_start..open],
            };
            let Some(name) = type_simple_name(head) else { continue };
            // Matching close brace.
            let mut depth = 0i64;
            let mut k = open;
            while k < bytes.len() {
                match bytes[k] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            out.push((open, k + 1, name));
        }
    }
    out
}

/// The simple name of a type head: strips `&`/`dyn`/`mut`, generics, a
/// trailing `where` clause, and leading path segments.
/// `amnt_bmt::CounterBlock<T> where T: X` → `CounterBlock`.
fn type_simple_name(head: &str) -> Option<String> {
    let mut t = head.trim();
    if let Some(w) = t.find(" where ") {
        t = t[..w].trim();
    }
    t = t.trim_start_matches('&').trim_start();
    for prefix in ["dyn ", "mut "] {
        if let Some(r) = t.strip_prefix(prefix) {
            t = r.trim_start();
        }
    }
    if let Some(lt) = t.find('<') {
        t = t[..lt].trim();
    }
    let last = t.rsplit("::").next()?.trim();
    if last.is_empty() || !last.bytes().all(is_ident_byte) {
        return None;
    }
    Some(last.to_string())
}

/// Extracts call sites in `masked[body_start..end]`, skipping `nested`
/// sub-spans (they belong to nested `fn` items).
fn call_sites(
    masked: &str,
    body_start: usize,
    end: usize,
    nested: &[(usize, usize)],
) -> Vec<CallSite> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut i = body_start;
    while i < end.min(bytes.len()) {
        if let Some(&(_, nend)) = nested.iter().find(|&&(ns, ne)| i >= ns && i < ne) {
            i = nend;
            continue;
        }
        if bytes[i] != b'(' {
            i += 1;
            continue;
        }
        let open = i;
        i += 1;
        // Walk back over whitespace to the callee name.
        let mut j = open;
        while j > body_start && bytes[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        if j > body_start && bytes[j - 1] == b'!' {
            continue; // macro invocation
        }
        let name_end = j;
        while j > body_start && is_ident_byte(bytes[j - 1]) {
            j -= 1;
        }
        if j == name_end {
            continue; // `(` after an operator or another `(` — grouping
        }
        let name = &masked[j..name_end];
        if CALL_KEYWORDS.contains(&name) || CONSTRUCTOR_NAMES.contains(&name) {
            continue;
        }
        if name.as_bytes()[0].is_ascii_digit() {
            continue;
        }
        // `fn name(` is a definition header (nested fns are skipped above,
        // but closures bound with `fn` pointers etc. stay out too).
        let before_name = masked[..j].trim_end();
        if before_name.ends_with("fn") {
            continue;
        }
        let recv = receiver_of(masked, body_start, j);
        out.push(CallSite { name: name.to_string(), recv, offset: j });
    }
    out
}

/// Extracts the `let`-binding type table of `masked[body_start..end]`,
/// skipping `nested` fn sub-spans. A binding contributes a type when the
/// pattern is a plain ident and either an annotation (`let x: T = ..`) or
/// a path-constructor initialiser (`let x = T::new(..)`, `let x = T {`)
/// names one; a name re-bound at a different type is dropped (shadowing).
fn local_bindings(
    masked: &str,
    body_start: usize,
    end: usize,
    nested: &[(usize, usize)],
) -> BTreeMap<String, String> {
    let bytes = masked.as_bytes();
    let end = end.min(bytes.len());
    // `None` marks a poisoned (conflictingly re-bound) name.
    let mut out: BTreeMap<String, Option<String>> = BTreeMap::new();
    let mut i = body_start;
    while i + 3 <= end {
        if let Some(&(_, nend)) = nested.iter().find(|&&(ns, ne)| i >= ns && i < ne) {
            i = nend;
            continue;
        }
        if &bytes[i..i + 3] != b"let"
            || (i > 0 && is_ident_byte(bytes[i - 1]))
            || (i + 3 < end && is_ident_byte(bytes[i + 3]))
        {
            i += 1;
            continue;
        }
        let mut j = i + 3;
        let skip_ws = |j: &mut usize| {
            while *j < end && bytes[*j].is_ascii_whitespace() {
                *j += 1;
            }
        };
        skip_ws(&mut j);
        if masked[j..end].starts_with("mut") && !is_ident_byte(*bytes.get(j + 3).unwrap_or(&b' '))
        {
            j += 3;
            skip_ws(&mut j);
        }
        let name_start = j;
        while j < end && is_ident_byte(bytes[j]) {
            j += 1;
        }
        let name = &masked[name_start..j];
        // Plain lowercase idents only: `let Some(x)`, `let (a, b)` and
        // friends are patterns, not nameable bindings.
        if name.is_empty() || !name.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') {
            i = j.max(i + 3);
            continue;
        }
        skip_ws(&mut j);
        let ty = match bytes.get(j) {
            // Annotation: everything up to the initialising `=` (or `;`).
            Some(b':') if bytes.get(j + 1) != Some(&b':') => {
                let ty_start = j + 1;
                let mut depth = 0i64;
                let mut k = ty_start;
                while k < end {
                    match bytes[k] {
                        b'<' | b'(' | b'[' => depth += 1,
                        b'>' if bytes.get(k.wrapping_sub(1)) != Some(&b'-') => depth -= 1,
                        b')' | b']' => depth -= 1,
                        b'=' | b';' if depth <= 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                type_simple_name(&masked[ty_start..k])
            }
            // Initialiser: a path constructor or struct literal names the
            // type; anything else (call result, borrow, literal) doesn't.
            Some(b'=') if bytes.get(j + 1) != Some(&b'=') => {
                let mut k = j + 1;
                while k < end && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                let mut segs: Vec<&str> = Vec::new();
                loop {
                    let s = k;
                    while k < end && is_ident_byte(bytes[k]) {
                        k += 1;
                    }
                    if k == s {
                        break;
                    }
                    segs.push(&masked[s..k]);
                    if masked[k..end].starts_with("::") {
                        k += 2;
                    } else {
                        break;
                    }
                }
                let upper = |s: &str| s.starts_with(|c: char| c.is_ascii_uppercase());
                while k < end && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                match bytes.get(k) {
                    // `T::new(..)` / `path::T::default()` — the last
                    // uppercase segment before the constructor fn.
                    Some(b'(') if segs.len() >= 2 => segs[..segs.len() - 1]
                        .iter()
                        .rfind(|s| upper(s))
                        .map(|s| s.to_string()),
                    // `T { .. }` / `path::T { .. }` struct literal.
                    Some(b'{') => {
                        segs.last().filter(|s| upper(s)).map(|s| s.to_string())
                    }
                    _ => None,
                }
            }
            _ => None,
        };
        if let Some(ty) = ty {
            out.entry(name.to_string())
                .and_modify(|prev| {
                    if prev.as_deref() != Some(ty.as_str()) {
                        *prev = None;
                    }
                })
                .or_insert(Some(ty));
        }
        i = j.max(i + 3);
    }
    out.into_iter().filter_map(|(k, v)| v.map(|ty| (k, ty))).collect()
}

/// Classifies the receiver of a call whose name starts at `name_at`.
fn receiver_of(masked: &str, body_start: usize, name_at: usize) -> Receiver {
    let bytes = masked.as_bytes();
    if name_at == body_start {
        return Receiver::Bare;
    }
    match bytes[name_at - 1] {
        b'.' => {
            // Method call: look at what precedes the dot.
            let mut j = name_at - 1;
            // `)` / `]` / `?` → some expression we don't name.
            if j > body_start && matches!(bytes[j - 1], b')' | b']' | b'?') {
                return Receiver::Expr;
            }
            let recv_end = j;
            while j > body_start && is_ident_byte(bytes[j - 1]) {
                j -= 1;
            }
            if j == recv_end {
                return Receiver::Expr;
            }
            let recv = &masked[j..recv_end];
            let projected = j > body_start && bytes[j - 1] == b'.';
            if recv == "self" && !projected {
                Receiver::SelfDot
            } else if projected {
                Receiver::Field(recv.to_string())
            } else {
                Receiver::Local(recv.to_string())
            }
        }
        b':' if name_at >= 2 && bytes[name_at - 2] == b':' => {
            let mut j = name_at - 2;
            let seg_end = j;
            while j > body_start && is_ident_byte(bytes[j - 1]) {
                j -= 1;
            }
            if j == seg_end {
                return Receiver::Expr;
            }
            Receiver::Path(masked[j..seg_end].to_string())
        }
        _ => Receiver::Bare,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_items_carry_impl_types_and_receivers() {
        let src = "struct S;\n\
                   impl S {\n\
                   \x20   fn method(&mut self, x: u8) -> u8 { x }\n\
                   \x20   fn assoc(x: u8) -> u8 { x }\n\
                   }\n\
                   impl std::fmt::Display for S {\n\
                   \x20   fn fmt(&self) -> u8 { 0 }\n\
                   }\n\
                   fn free() {}\n";
        let items = parse_file("a.rs", src);
        let ids: Vec<String> = items.iter().map(|f| f.display_id()).collect();
        assert_eq!(ids, vec!["a.rs::S::method", "a.rs::S::assoc", "a.rs::S::fmt", "a.rs::free"]);
        assert!(items[0].has_receiver);
        assert!(!items[1].has_receiver);
        assert!(items[2].has_receiver);
        assert!(!items[3].has_receiver);
    }

    #[test]
    fn call_sites_classified_by_receiver() {
        let src = "impl S {\n\
                   \x20   fn go(&mut self) {\n\
                   \x20       self.step();\n\
                   \x20       self.nvm.write_u64(1, 2);\n\
                   \x20       Helper::make(3);\n\
                   \x20       free_fn();\n\
                   \x20       self.list().pop();\n\
                   \x20       emit!(\"not a call\");\n\
                   \x20       if x() {}\n\
                   \x20   }\n\
                   }\n";
        let items = parse_file("a.rs", src);
        let calls: Vec<(String, Receiver)> =
            items[0].calls.iter().map(|c| (c.name.clone(), c.recv.clone())).collect();
        assert_eq!(
            calls,
            vec![
                ("step".into(), Receiver::SelfDot),
                ("write_u64".into(), Receiver::Field("nvm".into())),
                ("make".into(), Receiver::Path("Helper".into())),
                ("free_fn".into(), Receiver::Bare),
                ("list".into(), Receiver::SelfDot),
                ("pop".into(), Receiver::Expr),
                ("x".into(), Receiver::Bare),
            ]
        );
    }

    #[test]
    fn nested_fn_calls_belong_to_the_nested_item() {
        let src = "fn outer() {\n\
                   \x20   fn inner() { deep(); }\n\
                   \x20   shallow();\n\
                   }\n";
        let items = parse_file("a.rs", src);
        assert_eq!(items.len(), 2);
        let outer = items.iter().find(|f| f.name == "outer").unwrap();
        let inner = items.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].name, "shallow");
        assert_eq!(inner.calls.len(), 1);
        assert_eq!(inner.calls[0].name, "deep");
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   fn helper() {}\n\
                   }\n";
        let items = parse_file("a.rs", src);
        assert!(!items.iter().find(|f| f.name == "live").unwrap().in_test);
        assert!(items.iter().find(|f| f.name == "helper").unwrap().in_test);
    }

    #[test]
    fn generic_fns_and_where_clauses_parse() {
        let src = "fn g<T: Into<u64>>(x: T) -> u64 where T: Copy { x.into() }\n";
        let items = parse_file("a.rs", src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "g");
        assert!(!items[0].has_receiver);
        assert_eq!(items[0].calls.len(), 1);
        assert_eq!(items[0].calls[0].name, "into");
    }

    #[test]
    fn local_receivers_are_distinguished_from_projected_fields() {
        let src = "impl S {\n\
                   \x20   fn go(&mut self) {\n\
                   \x20       let c = Controller::new(1);\n\
                   \x20       c.step();\n\
                   \x20       self.nvm.flush();\n\
                   \x20   }\n\
                   }\n";
        let items = parse_file("a.rs", src);
        let calls: Vec<(String, Receiver)> =
            items[0].calls.iter().map(|c| (c.name.clone(), c.recv.clone())).collect();
        assert_eq!(
            calls,
            vec![
                ("new".into(), Receiver::Path("Controller".into())),
                ("step".into(), Receiver::Local("c".into())),
                ("flush".into(), Receiver::Field("nvm".into())),
            ]
        );
    }

    #[test]
    fn let_bindings_pin_types_from_annotations_and_constructors() {
        let src = "fn go() {\n\
                   \x20   let a: amnt_core::Controller = make();\n\
                   \x20   let mut b = Tracer::new(cfg);\n\
                   \x20   let c = Config { depth: 3 };\n\
                   \x20   let d = helper();\n\
                   \x20   let (e, f) = pair();\n\
                   \x20   let g: Vec<Frame> = Vec::new();\n\
                   }\n";
        let items = parse_file("a.rs", src);
        let l = &items[0].locals;
        assert_eq!(l.get("a").map(String::as_str), Some("Controller"));
        assert_eq!(l.get("b").map(String::as_str), Some("Tracer"));
        assert_eq!(l.get("c").map(String::as_str), Some("Config"));
        assert_eq!(l.get("d"), None, "plain call initialiser pins nothing");
        assert_eq!(l.get("e"), None, "tuple patterns are skipped");
        assert_eq!(l.get("g").map(String::as_str), Some("Vec"));
    }

    #[test]
    fn conflicting_rebinds_poison_the_local_type() {
        let src = "fn go() {\n\
                   \x20   let x = Nvm::new();\n\
                   \x20   let x = Cache::new();\n\
                   \x20   let y = Nvm::new();\n\
                   \x20   let y = Nvm::with_capacity(4);\n\
                   }\n";
        let items = parse_file("a.rs", src);
        assert_eq!(items[0].locals.get("x"), None, "re-bound at a different type");
        assert_eq!(items[0].locals.get("y").map(String::as_str), Some("Nvm"));
    }

    #[test]
    fn nested_fn_bindings_stay_out_of_the_outer_table() {
        let src = "fn outer() {\n\
                   \x20   fn inner() { let z = Nvm::new(); }\n\
                   \x20   let w = Cache::new();\n\
                   }\n";
        let items = parse_file("a.rs", src);
        let outer = items.iter().find(|f| f.name == "outer").unwrap();
        let inner = items.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(outer.locals.get("z"), None);
        assert_eq!(outer.locals.get("w").map(String::as_str), Some("Cache"));
        assert_eq!(inner.locals.get("z").map(String::as_str), Some("Nvm"));
    }

    #[test]
    fn type_names_strip_paths_generics_and_refs() {
        assert_eq!(type_simple_name(" amnt_bmt::CounterBlock<T> "), Some("CounterBlock".into()));
        assert_eq!(type_simple_name(" &mut Nvm "), Some("Nvm".into()));
        assert_eq!(type_simple_name("S where T: X"), Some("S".into()));
        assert_eq!(type_simple_name(""), None);
    }
}
