//! # amnt-lint
//!
//! A zero-dependency static analysis gate for the workspace's two
//! load-bearing promises:
//!
//! 1. **Crash-path discipline** — code that runs during or after a crash
//!    must never panic and must pair persistent-metadata mutations with
//!    the ordering machinery recovery depends on.
//! 2. **Deterministic replay** — simulation results are a function of the
//!    seed alone: no wall-clock time, no OS entropy, no hasher-seeded
//!    iteration order.
//!
//! The scanner is a comment- and string-aware lexer (see [`lexer`]) — it
//! is *not* a Rust parser, and the rules are deliberately conservative
//! pattern checks scoped by path (see [`rules::RULES`] and
//! `cargo run -p amnt-lint -- --explain R3`). Pre-existing or
//! intentionally-accepted findings live in the checked-in
//! `lint-baseline.txt` (see [`baseline`]); the gate fails only on *new*
//! findings.
//!
//! ```
//! use amnt_lint::lint_source;
//!
//! let bad = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
//! let findings = lint_source("crates/core/src/protocol/fake.rs", bad);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "R1");
//!
//! // Same code outside the crash-critical scope: clean.
//! assert!(lint_source("crates/cache/src/lru.rs", bad).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use rules::{lint_source, rule_info, Finding, RuleInfo, Severity, RULES};
pub use walk::{collect_files, find_root};

use std::io;
use std::path::Path;

/// Lints every scanned file under the workspace `root`, returning all raw
/// findings (baseline not yet applied), sorted by path/line/rule.
///
/// # Errors
///
/// Propagates filesystem errors from discovery or reading.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for (rel, abs) in collect_files(root)? {
        let content = std::fs::read_to_string(&abs)?;
        findings.extend(lint_source(&rel, &content));
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    Ok(findings)
}
