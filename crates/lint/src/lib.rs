//! # amnt-lint
//!
//! A zero-dependency static analysis gate for the workspace's two
//! load-bearing promises:
//!
//! 1. **Crash-path discipline** — code that runs during or after a crash
//!    must never panic and must pair persistent-metadata mutations with
//!    the ordering machinery recovery depends on.
//! 2. **Deterministic replay** — simulation results are a function of the
//!    seed alone: no wall-clock time, no OS entropy, no hasher-seeded
//!    iteration order.
//!
//! The scanner is a comment- and string-aware lexer (see [`lexer`]) — it
//! is *not* a full Rust parser. Two analysis layers run over it:
//!
//! * **Per-file rules** — conservative pattern checks scoped by path
//!   (see [`rules::RULES`] and `cargo run -p amnt-lint -- --explain R3`).
//! * **Interprocedural rules** — a fn-item [`parse`] layer feeds a
//!   workspace [`callgraph`], and [`dataflow`] runs boolean fixpoints
//!   over it: crash-path panic reachability (R1), persist/fence pairing
//!   across caller paths (R3), and atomic-group bracketing (R9). Use
//!   `--dump-callgraph` to see how calls resolved.
//!
//! Pre-existing or intentionally-accepted findings live in the
//! checked-in `lint-baseline.txt` (see [`baseline`]); the gate fails
//! only on *new* findings.
//!
//! ```
//! use amnt_lint::lint_source;
//!
//! let bad = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
//! let findings = lint_source("crates/core/src/protocol/fake.rs", bad);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "R1");
//!
//! // Same code outside the crash-critical scope: clean.
//! assert!(lint_source("crates/cache/src/lru.rs", bad).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod dataflow;
pub mod json;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod walk;

pub use rules::{rule_info, Finding, RuleInfo, Severity, RULES};
pub use walk::{collect_files, find_root};

use std::io;
use std::path::Path;

/// Lints a corpus of `(repo-relative path, content)` files as one unit:
/// the per-file rules on each file, then the interprocedural rules over
/// the corpus's call graph. Findings are sorted by path/line/rule.
pub fn lint_corpus(files: &[(String, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (rel, content) in files {
        findings.extend(rules::per_file_findings(rel, content));
    }
    findings.extend(dataflow::interprocedural_findings(files));
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    findings
}

/// Lints one file's content under its repo-relative `path` — a
/// single-file corpus, so the interprocedural rules see no callers and
/// reduce to their leaf cases (an unfenced R3 mutation with no callers is
/// flagged, exactly the old per-function behavior).
pub fn lint_source(path: &str, content: &str) -> Vec<Finding> {
    lint_corpus(&[(path.to_string(), content.to_string())])
}

/// Lints every scanned file under the workspace `root`, returning all raw
/// findings (baseline not yet applied), sorted by path/line/rule.
///
/// # Errors
///
/// Propagates filesystem errors from discovery or reading.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(lint_corpus(&read_corpus(root)?))
}

/// Reads every scanned file under `root` into a `(relative path,
/// content)` corpus, for [`lint_corpus`] or a call-graph dump.
///
/// # Errors
///
/// Propagates filesystem errors from discovery or reading.
pub fn read_corpus(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    for (rel, abs) in collect_files(root)? {
        files.push((rel, std::fs::read_to_string(&abs)?));
    }
    Ok(files)
}
