//! Minimal JSON emitter for the `--json` findings artifact.
//!
//! Hand-rolled because the linter is zero-dependency by design; the
//! output shape is small and fixed:
//!
//! ```json
//! {
//!   "new": [{"path": "...", "line": 1, "rule": "R1",
//!            "severity": "error", "message": "..."}],
//!   "suppressed": 0,
//!   "stale": ["path · RULE · message"]
//! }
//! ```

use crate::rules::Finding;

/// Renders the gate outcome as a JSON document (trailing newline
/// included, keys in a fixed order so the artifact diffs cleanly).
pub fn render(fresh: &[Finding], suppressed: usize, stale: &[String]) -> String {
    let mut out = String::from("{\n  \"new\": [");
    for (i, f) in fresh.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"severity\": {}, \"message\": {}}}",
            escape(&f.path),
            f.line,
            escape(f.rule),
            escape(&f.severity.to_string()),
            escape(&f.message),
        ));
    }
    if !fresh.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"suppressed\": {suppressed},\n  \"stale\": ["));
    for (i, key) in stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&escape(key));
    }
    if !stale.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string escaping per RFC 8259: quote, backslash, and control
/// characters; everything else passes through (the document is UTF-8).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Severity};

    #[test]
    fn renders_and_escapes() {
        let f = Finding {
            path: "a/b.rs".to_string(),
            line: 7,
            rule: "R1",
            severity: Severity::Error,
            message: "uses `x[\"k\\n\"]`".to_string(),
        };
        let doc = render(&[f], 2, &["old · R6 · gone".to_string()]);
        assert!(doc.contains("\"line\": 7"), "{doc}");
        assert!(doc.contains("\\\"k\\\\n\\\""), "{doc}");
        assert!(doc.contains("\"suppressed\": 2"), "{doc}");
        assert!(doc.contains("old · R6 · gone"), "{doc}");
        assert!(doc.ends_with("]\n}\n"), "{doc}");
    }

    #[test]
    fn empty_gate_is_compact() {
        assert_eq!(render(&[], 0, &[]), "{\n  \"new\": [],\n  \"suppressed\": 0,\n  \"stale\": []\n}\n");
    }
}
