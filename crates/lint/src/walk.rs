//! Workspace file discovery.

use std::io;
use std::path::{Path, PathBuf};

/// Collects every `.rs` file the linter scans, as (repo-relative path with
/// forward slashes, absolute path), sorted by relative path.
///
/// Scanned: `src/`, `examples/`, `tests/` at the workspace root, and
/// `src/`, `tests/`, `benches/`, `examples/` under each `crates/*`.
/// `crates/lint/tests/` is excluded — it holds deliberately-bad rule
/// fixtures.
///
/// # Errors
///
/// Propagates filesystem errors other than missing directories.
pub fn collect_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    for top in ["src", "examples", "tests"] {
        dirs.push(root.join(top));
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let is_lint = member.file_name().is_some_and(|n| n == "lint");
            for sub in ["src", "tests", "benches", "examples"] {
                if is_lint && sub == "tests" {
                    continue;
                }
                dirs.push(member.join(sub));
            }
        }
    }
    let mut files = Vec::new();
    for dir in dirs {
        if dir.is_dir() {
            walk_dir(&dir, &mut files)?;
        }
    }
    let mut out: Vec<(String, PathBuf)> = files
        .into_iter()
        .filter_map(|abs| {
            let rel = abs.strip_prefix(root).ok()?.to_string_lossy().replace('\\', "/");
            Some((rel, abs))
        })
        .collect();
    out.sort();
    Ok(out)
}

fn walk_dir(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_dir(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the workspace root: walks up from `start` looking for a
/// `Cargo.toml` containing `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}
