//! The workspace call graph: name resolution over [`crate::parse`] items.
//!
//! # Resolution policy
//!
//! Call sites resolve to candidate `fn` items **by name**, narrowed by the
//! receiver shape. The policy is deliberately explicit because the two
//! interprocedural rules consume uncertainty in *opposite* soundness
//! directions (see [`crate::dataflow`]):
//!
//! * `self.f(..)` — candidates defined on the caller's own `impl` type win;
//!   failing that, any method candidate (`fn f(&self, ..)`); failing that,
//!   every same-name candidate. A `self` call that matches *nothing* in the
//!   corpus is recorded as an **unresolved self-call** — the conservative
//!   fallback the rules document (R3 treats it as a possible fence, R9 as a
//!   possible bracket close, R1v2 has nothing to scan).
//! * `local.f(..)` — when the caller's `let`-binding table
//!   ([`FnItem::locals`]) pins the receiver's type (`let c = Controller::
//!   new(..)` then `c.f(..)`), only candidates on exactly that type
//!   survive — and a pinned type with *no* corpus candidate is unresolved
//!   outright, even for a globally unique name (the binding says the call
//!   goes to std/alloc, not to the lookalike). Unpinned locals fall back
//!   to the field policy below.
//! * `field.f(..)` — a globally unique name resolves outright; otherwise
//!   candidates whose `impl` type matches the receiver ident
//!   (case-insensitive containment: `timeline` ↔ `MemoryTimeline`) are
//!   kept. No unique name and no type match → **unresolved** (almost
//!   always a std/alloc method like `vec.push(..)`).
//! * `Type::f(..)` — candidates on exactly that type; `Self::f(..)` uses
//!   the caller's `impl` type; a lowercase segment is treated as a module
//!   path (free-fn candidates in a file of that name, else a unique name).
//! * `expr.f(..)` — unique name or nothing.
//! * `f(..)` — free-fn candidates, same file first.
//!
//! Any narrowing that still leaves several candidates produces an
//! **ambiguous** edge to each of them. `#[cfg(test)]` items and files under
//! `tests/`/`benches/` never enter the graph — fixtures and test harnesses
//! must not vouch for (or indict) production call paths.

use crate::parse::{CallSite, FnItem, Receiver};
use std::collections::BTreeMap;

/// How confidently a call edge was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Exactly one candidate survived the policy.
    Resolved,
    /// Several candidates survived; the edge targets each of them.
    Ambiguous,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Index of the callee in [`CallGraph::fns`].
    pub callee: usize,
    /// Resolution confidence.
    pub kind: EdgeKind,
    /// Absolute byte offset of the call site in the caller's file.
    pub site: usize,
}

/// An unresolved call site, kept for the conservative fallbacks and for
/// `--dump-callgraph`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnresolvedSite {
    /// Callee name as written.
    pub name: String,
    /// Whether the receiver was `self` (the shape the R3/R9 fallbacks
    /// treat as a possible fence/close).
    pub self_call: bool,
    /// Absolute byte offset in the caller's file.
    pub site: usize,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// Graph nodes: non-test `fn` items from `src/` files.
    pub fns: Vec<FnItem>,
    /// Out-edges per node, in call-site order.
    pub edges: Vec<Vec<Edge>>,
    /// In-edges: `(caller index, call-site offset in the caller's file)`.
    pub callers: Vec<Vec<(usize, usize)>>,
    /// Unresolved call sites per node, in call-site order.
    pub unresolved: Vec<Vec<UnresolvedSite>>,
}

/// Whether a scanned file participates in the call graph. Test and bench
/// trees are excluded: their calls are not production paths.
fn graph_path(path: &str) -> bool {
    !(path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/"))
}

impl CallGraph {
    /// Builds the graph from parsed items (test items and test-tree files
    /// are dropped here).
    pub fn build(items: Vec<FnItem>) -> CallGraph {
        let fns: Vec<FnItem> =
            items.into_iter().filter(|f| !f.in_test && graph_path(&f.path)).collect();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
        let mut callers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); fns.len()];
        let mut unresolved: Vec<Vec<UnresolvedSite>> = vec![Vec::new(); fns.len()];
        for i in 0..fns.len() {
            for call in fns[i].calls.clone() {
                let cands = by_name.get(call.name.as_str()).cloned().unwrap_or_default();
                match resolve(&fns, i, &call, &cands) {
                    Resolution::To(targets) => {
                        let kind =
                            if targets.len() == 1 { EdgeKind::Resolved } else { EdgeKind::Ambiguous };
                        for t in targets {
                            edges[i].push(Edge { callee: t, kind, site: call.offset });
                            callers[t].push((i, call.offset));
                        }
                    }
                    Resolution::External => unresolved[i].push(UnresolvedSite {
                        name: call.name.clone(),
                        self_call: call.recv == Receiver::SelfDot,
                        site: call.offset,
                    }),
                }
            }
        }
        CallGraph { fns, edges, callers, unresolved }
    }

    /// Node indices whose `(path prefix, name)` matches — entry-point
    /// lookup for the dataflow rules.
    pub fn find(&self, path_prefixes: &[&str], names: &[&str]) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                names.contains(&f.name.as_str())
                    && path_prefixes.iter().any(|p| f.path.starts_with(p))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Human-readable graph dump for `--dump-callgraph`: one block per
    /// function with its resolved, ambiguous, and unresolved call sites.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (i, f) in self.fns.iter().enumerate() {
            out.push_str(&format!("fn {} (line {})\n", f.display_id(), f.line));
            for e in &self.edges[i] {
                let tag = match e.kind {
                    EdgeKind::Resolved => "->",
                    EdgeKind::Ambiguous => "~>",
                };
                out.push_str(&format!("  {tag} {}\n", self.fns[e.callee].display_id()));
            }
            for u in &self.unresolved[i] {
                let recv = if u.self_call { "self." } else { "" };
                out.push_str(&format!("  ?? {recv}{} (external)\n", u.name));
            }
        }
        out
    }
}

enum Resolution {
    To(Vec<usize>),
    External,
}

/// The shared `field.f(..)` policy: unique name wins, else impl-type
/// containment against the receiver ident.
fn resolve_field(fns: &[FnItem], recv: &str, cands: &[usize]) -> Resolution {
    if cands.len() == 1 {
        return Resolution::To(cands.to_vec());
    }
    let matches: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| type_matches(fns[c].impl_type.as_deref(), recv))
        .collect();
    if matches.is_empty() {
        Resolution::External
    } else {
        Resolution::To(matches)
    }
}

/// Case-insensitive containment between a receiver ident and an `impl`
/// type name: `timeline` ↔ `MemoryTimeline`, `nvm` ↔ `Nvm`.
fn type_matches(impl_type: Option<&str>, recv: &str) -> bool {
    let Some(t) = impl_type else { return false };
    let (t, r) = (t.to_ascii_lowercase(), recv.to_ascii_lowercase());
    t.contains(&r) || r.contains(&t)
}

fn resolve(fns: &[FnItem], caller: usize, call: &CallSite, cands: &[usize]) -> Resolution {
    if cands.is_empty() {
        return Resolution::External;
    }
    let pick = |v: Vec<usize>| if v.is_empty() { None } else { Some(Resolution::To(v)) };
    match &call.recv {
        Receiver::SelfDot => {
            let own = fns[caller].impl_type.as_deref();
            let same: Vec<usize> =
                cands.iter().copied().filter(|&c| own.is_some() && fns[c].impl_type.as_deref() == own).collect();
            if let Some(r) = pick(same) {
                return r;
            }
            let methods: Vec<usize> = cands.iter().copied().filter(|&c| fns[c].has_receiver).collect();
            if let Some(r) = pick(methods) {
                return r;
            }
            Resolution::To(cands.to_vec())
        }
        Receiver::Field(recv) => resolve_field(fns, recv, cands),
        Receiver::Local(recv) => {
            if let Some(ty) = fns[caller].locals.get(recv) {
                let on_type: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&c| fns[c].impl_type.as_deref() == Some(ty.as_str()))
                    .collect();
                return pick(on_type).unwrap_or(Resolution::External);
            }
            resolve_field(fns, recv, cands)
        }
        Receiver::Path(seg) => {
            let seg = if seg == "Self" {
                match fns[caller].impl_type.as_deref() {
                    Some(t) => t.to_string(),
                    None => return Resolution::External,
                }
            } else {
                seg.clone()
            };
            let on_type: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| fns[c].impl_type.as_deref() == Some(seg.as_str()))
                .collect();
            if let Some(r) = pick(on_type) {
                return r;
            }
            if seg.starts_with(|c: char| c.is_ascii_lowercase()) {
                // Module path: free fns in a file named after the module.
                let in_module: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&c| {
                        fns[c].impl_type.is_none()
                            && (fns[c].path.ends_with(&format!("/{seg}.rs"))
                                || fns[c].path.contains(&format!("/{seg}/")))
                    })
                    .collect();
                if let Some(r) = pick(in_module) {
                    return r;
                }
                if cands.len() == 1 {
                    return Resolution::To(cands.to_vec());
                }
            }
            Resolution::External
        }
        Receiver::Expr => {
            if cands.len() == 1 {
                Resolution::To(cands.to_vec())
            } else {
                Resolution::External
            }
        }
        Receiver::Bare => {
            let free_same_file: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| fns[c].impl_type.is_none() && fns[c].path == fns[caller].path)
                .collect();
            if let Some(r) = pick(free_same_file) {
                return r;
            }
            let free: Vec<usize> =
                cands.iter().copied().filter(|&c| fns[c].impl_type.is_none()).collect();
            pick(free).unwrap_or(Resolution::External)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let mut items = Vec::new();
        for (path, src) in files {
            items.extend(parse_file(path, src));
        }
        CallGraph::build(items)
    }

    fn idx(g: &CallGraph, id: &str) -> usize {
        g.fns.iter().position(|f| f.display_id() == id).unwrap_or_else(|| panic!("no {id}"))
    }

    #[test]
    fn receiver_ident_narrows_ambiguous_names() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "struct MemoryTimeline;\nimpl MemoryTimeline { fn write(&mut self) {} }\n\
                 struct Nvm;\nimpl Nvm { fn write(&mut self) {} }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "struct C { timeline: u8 }\nimpl C { fn go(&mut self) { self.timeline.write(); } }\n",
            ),
        ]);
        let go = idx(&g, "crates/b/src/lib.rs::C::go");
        assert_eq!(g.edges[go].len(), 1);
        assert_eq!(g.fns[g.edges[go][0].callee].display_id(), "crates/a/src/lib.rs::MemoryTimeline::write");
        assert_eq!(g.edges[go][0].kind, EdgeKind::Resolved);
    }

    #[test]
    fn field_call_with_no_match_is_external() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct A;\nimpl A { fn push(&mut self) {} }\n\
             struct B;\nimpl B { fn push(&mut self) {} }\n\
             fn go(v: &mut Vec<u8>) { v.push(); }\n",
        )]);
        let go = idx(&g, "crates/a/src/lib.rs::go");
        assert!(g.edges[go].is_empty());
        assert_eq!(g.unresolved[go].len(), 1);
        assert_eq!(g.unresolved[go][0].name, "push");
        assert!(!g.unresolved[go][0].self_call);
    }

    #[test]
    fn local_binding_type_resolves_ambiguous_method_names() {
        // Two `write` methods; the receiver ident "w" gives containment
        // nothing to work with, but the `let` binding pins the type.
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct MemoryTimeline;\nimpl MemoryTimeline { fn write(&mut self) {} }\n\
             struct Nvm;\nimpl Nvm { fn new() -> Nvm { Nvm } fn write(&mut self) {} }\n\
             fn go() { let w = Nvm::new(); w.write(); }\n",
        )]);
        let go = idx(&g, "crates/a/src/lib.rs::go");
        let writes: Vec<&Edge> =
            g.edges[go].iter().filter(|e| g.fns[e.callee].name == "write").collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(g.fns[writes[0].callee].display_id(), "crates/a/src/lib.rs::Nvm::write");
        assert_eq!(writes[0].kind, EdgeKind::Resolved);
    }

    #[test]
    fn pinned_std_local_beats_the_unique_name_shortcut() {
        // `v` is pinned to Vec, which has no corpus impl: the call must
        // NOT resolve to the lone same-name corpus method.
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct Wpq;\nimpl Wpq { fn push(&mut self) {} }\n\
             fn go() { let mut v: Vec<u8> = make(); v.push(1); }\n",
        )]);
        let go = idx(&g, "crates/a/src/lib.rs::go");
        assert!(g.edges[go].iter().all(|e| g.fns[e.callee].name != "push"));
        assert!(g.unresolved[go].iter().any(|u| u.name == "push"));
    }

    #[test]
    fn unpinned_local_falls_back_to_the_field_policy() {
        // A fn parameter never enters the binding table; a globally
        // unique name still resolves, as before.
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct Wpq;\nimpl Wpq { fn drain_all(&mut self) {} }\n\
             fn go(q: &mut Wpq) { q.drain_all(); }\n",
        )]);
        let go = idx(&g, "crates/a/src/lib.rs::go");
        assert_eq!(g.edges[go].len(), 1);
        assert_eq!(g.fns[g.edges[go][0].callee].name, "drain_all");
        assert_eq!(g.edges[go][0].kind, EdgeKind::Resolved);
    }

    #[test]
    fn test_items_and_test_trees_stay_out() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { live(); } }\n",
            ),
            ("crates/a/tests/fixture.rs", "fn harness() {}\n"),
        ]);
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "live");
    }

    #[test]
    fn dump_renders_all_three_edge_classes() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn a() { b(); c(); ext(); }\nfn b() {}\nfn c() {}\n",
        )]);
        let d = g.dump();
        assert!(d.contains("fn crates/a/src/lib.rs::a"));
        assert!(d.contains("-> crates/a/src/lib.rs::b"));
        assert!(d.contains("?? ext (external)"));
    }
}
