//! Fixpoint dataflow over the call graph: the three interprocedural
//! rules.
//!
//! Each rule picks an explicit *soundness direction* for the uncertainty
//! the call graph cannot remove (see the resolution policy in
//! [`crate::callgraph`]):
//!
//! * **R1v2 (crash-path panic-freedom)** over-approximates: every
//!   candidate of an ambiguous call is treated as *reachable*, so a panic
//!   is never missed because resolution was unsure. (Unresolved external
//!   calls have no body to scan; they are listed by `--dump-callgraph`.)
//! * **R3v2 (persist/fence pairing)** under-approximates: a mutation is
//!   flagged only when *no* fence can be proven on any path — an
//!   unresolved `self.`-call is assumed to be a fence, so uncertainty
//!   never produces a false alarm on the gate.
//! * **R9 (atomic-group bracketing)** follows R3's direction: an
//!   unresolved `self.`-call after `begin_atomic` is assumed to close the
//!   group.
//!
//! The fence/close analyses run *downward* (does this function, or
//! anything it calls, fence?) and acceptance runs *upward* (is every
//! caller path fenced?); both are monotone boolean fixpoints, so
//! recursion converges.

use crate::callgraph::CallGraph;
use crate::lexer::{is_ident_byte, line_of, line_starts, mask, token_offsets};
use crate::parse::parse_masked;
use crate::rules::{mk_finding, Finding, R1_SCOPE, R3_FENCES, R3_MUTATIONS, R3_SCOPE};
use std::collections::BTreeMap;

/// Entry-point names for R1v2 reachability.
const R1_ENTRY_NAMES: [&str; 3] = ["recover", "crash", "dirty_shutdown"];
/// Entry points must be defined under these path prefixes.
const R1_ENTRY_PATHS: [&str; 2] = ["crates/core/src/", "crates/nvm/src/"];

/// Runs the interprocedural rules over a whole corpus of
/// `(repo-relative path, content)` files and returns their findings
/// (unsorted; the caller merges and sorts).
pub fn interprocedural_findings(files: &[(String, String)]) -> Vec<Finding> {
    let mut masked: BTreeMap<&str, (String, Vec<usize>)> = BTreeMap::new();
    let mut items = Vec::new();
    for (path, content) in files {
        let m = mask(content);
        let starts = line_starts(&m);
        items.extend(parse_masked(path, &m));
        masked.insert(path.as_str(), (m, starts));
    }
    let graph = CallGraph::build(items);
    let feats: Vec<Features> = graph.fns.iter().map(Features::scan).collect();
    let line_at = |path: &str, offset: usize| -> usize {
        masked.get(path).map_or(1, |(_, starts)| line_of(starts, offset))
    };

    let mut findings = Vec::new();
    r1_reachable_panic_freedom(&graph, &feats, &line_at, &mut findings);
    r3_persist_fence_pairing(&graph, &feats, &line_at, &mut findings);
    r9_atomic_bracketing(&graph, &feats, &line_at, &mut findings);
    findings
}

/// Per-function token features, scanned once from the masked body.
struct Features {
    /// Offsets (absolute in the file) of R3 mutation tokens.
    mutations: Vec<usize>,
    /// Whether an R3 fence token appears locally.
    fence_local: bool,
    /// Offsets of `begin_atomic(` call tokens.
    begins: Vec<usize>,
    /// Offsets of `end_atomic(` call tokens.
    ends: Vec<usize>,
    /// Offsets of early-exit tokens: `?` and `return`.
    exits: Vec<usize>,
    /// `(offset, pattern)` of panic-prone tokens.
    panics: Vec<(usize, &'static str)>,
    /// `(offset, subscript ident)` of unguarded bare-identifier indexing.
    unguarded_idx: Vec<(usize, String)>,
}

impl Features {
    fn scan(f: &crate::parse::FnItem) -> Features {
        let body = f.body.as_str();
        let base = f.body_start;
        let abs = |rel: usize| base + rel;

        let mut mutations = Vec::new();
        for pat in R3_MUTATIONS {
            mutations.extend(body.match_indices(pat).map(|(at, _)| abs(at)));
        }
        mutations.sort_unstable();
        let fence_local = R3_FENCES.iter().any(|pat| body.contains(pat));

        let call_token = |name: &str| -> Vec<usize> {
            token_offsets(body, name)
                .into_iter()
                .filter(|&at| body[at + name.len()..].trim_start().starts_with('('))
                .map(abs)
                .collect()
        };
        let begins = call_token("begin_atomic");
        let ends = call_token("end_atomic");

        let mut exits: Vec<usize> =
            body.bytes().enumerate().filter(|&(_, b)| b == b'?').map(|(at, _)| abs(at)).collect();
        exits.extend(token_offsets(body, "return").into_iter().map(abs));
        exits.sort_unstable();

        let mut panics = Vec::new();
        for pat in [".unwrap()", ".expect(", "panic!", "unreachable!"] {
            panics.extend(body.match_indices(pat).map(|(at, _)| (abs(at), pat)));
        }
        panics.sort_unstable();

        let unguarded_idx =
            unguarded_indexing(body).into_iter().map(|(at, id)| (abs(at), id)).collect();

        Features { mutations, fence_local, begins, ends, exits, panics, unguarded_idx }
    }
}

/// Bare-identifier subscripts (`x[i]`) with no visible bound on `i` in the
/// same function. Deliberately narrow: literal subscripts, ranges, and
/// compound expressions are out of scope; `i` counts as guarded when it is
/// bound by a `for` pattern, compared against a bound (`i <`, `i <=`,
/// `i >=` — assertions included), or derived through `%` / `.min(` /
/// `& mask` in an assignment.
fn unguarded_indexing(body: &str) -> Vec<(usize, String)> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    for (open, _) in body.match_indices('[') {
        if open == 0 || !(is_ident_byte(bytes[open - 1]) || bytes[open - 1] == b')' || bytes[open - 1] == b']') {
            continue; // array literal / attribute / slice type, not indexing
        }
        let mut depth = 0i64;
        let mut close = open;
        while close < bytes.len() {
            match bytes[close] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            close += 1;
        }
        if close >= bytes.len() {
            continue;
        }
        let sub = body[open + 1..close].trim();
        if sub.is_empty()
            || sub.bytes().next().is_some_and(|b| b.is_ascii_digit())
            || !sub.bytes().all(is_ident_byte)
        {
            continue; // literal, range, or compound expression
        }
        if !ident_guarded(body, sub) {
            out.push((open, sub.to_string()));
        }
    }
    out
}

/// Whether `ident` has a visible bound anywhere in `body`.
fn ident_guarded(body: &str, ident: &str) -> bool {
    let bytes = body.as_bytes();
    let ins = token_offsets(body, "in");
    for f in token_offsets(body, "for") {
        // The pattern between `for` and its `in` binds iteration variables.
        if let Some(&i) = ins.iter().find(|&&i| i > f) {
            if token_offsets(&body[f..i], ident).iter().any(|_| true) {
                return true;
            }
        }
    }
    for at in token_offsets(body, ident) {
        let rest = body[at + ident.len()..].trim_start();
        // Comparison against a bound (covers if/while guards and asserts).
        if (rest.starts_with('<') && !rest.starts_with("<<"))
            || rest.starts_with(">=")
            || rest.starts_with("<=")
        {
            return true;
        }
        // Assignment deriving the ident through a bounding operation.
        if rest.starts_with('=') && !rest.starts_with("==") {
            let stmt_end = rest.find(';').unwrap_or(rest.len());
            let rhs = &rest[..stmt_end];
            if rhs.contains('%') || rhs.contains(".min(") || rhs.contains(".clamp(") || rhs.contains("& ") {
                return true;
            }
        }
        // Walk back: `let ident = ... % ...` is caught above; also accept a
        // preceding `< ident` upper-bound comparison.
        let before = body[..at].trim_end();
        if before.ends_with('<') && !before.ends_with("<<") {
            return true;
        }
    }
    let _ = bytes;
    false
}

/// Downward boolean fixpoint: `out[f] = base[f] || any(out[callee])`.
fn reach_down(graph: &CallGraph, base: Vec<bool>) -> Vec<bool> {
    let mut out = base;
    loop {
        let mut changed = false;
        for i in 0..graph.fns.len() {
            if out[i] {
                continue;
            }
            if graph.edges[i].iter().any(|e| out[e.callee]) {
                out[i] = true;
                changed = true;
            }
        }
        if !changed {
            return out;
        }
    }
}

/// Upward ∀-acceptance fixpoint:
/// `acc[x] = callers(x) ≠ ∅ && ∀ (c, site) ∈ callers(x): ok(c, site) || acc[c]`.
fn accepted_up(graph: &CallGraph, ok: impl Fn(usize, usize) -> bool) -> Vec<bool> {
    let mut acc = vec![false; graph.fns.len()];
    loop {
        let mut changed = false;
        for x in 0..graph.fns.len() {
            if acc[x] || graph.callers[x].is_empty() {
                continue;
            }
            if graph.callers[x].iter().all(|&(c, site)| ok(c, site) || acc[c]) {
                acc[x] = true;
                changed = true;
            }
        }
        if !changed {
            return acc;
        }
    }
}

// ------------------------------------------------------------ R1v2 ----

fn r1_reachable_panic_freedom(
    graph: &CallGraph,
    feats: &[Features],
    line_at: &impl Fn(&str, usize) -> usize,
    findings: &mut Vec<Finding>,
) {
    let entries = graph.find(&R1_ENTRY_PATHS, &R1_ENTRY_NAMES);
    // BFS, remembering which entry first reached each node.
    let mut reached_from: Vec<Option<usize>> = vec![None; graph.fns.len()];
    let mut queue = std::collections::VecDeque::new();
    for &e in &entries {
        if reached_from[e].is_none() {
            reached_from[e] = Some(e);
            queue.push_back(e);
        }
    }
    while let Some(i) = queue.pop_front() {
        let entry = reached_from[i].unwrap_or(i);
        for e in &graph.edges[i] {
            if reached_from[e.callee].is_none() {
                reached_from[e.callee] = Some(entry);
                queue.push_back(e.callee);
            }
        }
    }
    for i in 0..graph.fns.len() {
        let Some(entry) = reached_from[i] else { continue };
        let f = &graph.fns[i];
        let entry_name = &graph.fns[entry].name;
        // The four panic patterns are already policed per-file inside
        // R1's path scope; the reachability pass extends them to every
        // file the crash path can actually touch.
        if !R1_SCOPE.iter().any(|s| f.path.starts_with(s)) {
            for &(at, pat) in &feats[i].panics {
                findings.push(mk_finding(
                    &f.path,
                    line_at(&f.path, at),
                    "R1",
                    &format!(
                        "`{pat}{}` in fn `{}` — reachable from crash-path entry `{entry_name}`; return a typed error",
                        if pat.ends_with('(') { "...)" } else { "" },
                        f.name,
                    ),
                ));
            }
        }
        // Unguarded indexing is new with R1v2 and applies to the whole
        // reachable set, crash-path files included.
        for (at, ident) in &feats[i].unguarded_idx {
            findings.push(mk_finding(
                &f.path,
                line_at(&f.path, *at),
                "R1",
                &format!(
                    "unguarded index `[{ident}]` in fn `{}` — reachable from crash-path entry `{entry_name}`; bound-check the subscript or use .get",
                    f.name,
                ),
            ));
        }
    }
}

// ------------------------------------------------------------ R3v2 ----

fn r3_persist_fence_pairing(
    graph: &CallGraph,
    feats: &[Features],
    line_at: &impl Fn(&str, usize) -> usize,
    findings: &mut Vec<Finding>,
) {
    // Downward: does f fence locally, via a callee, or possibly via an
    // unresolved self-call (conservative fallback)?
    let base: Vec<bool> = (0..graph.fns.len())
        .map(|i| feats[i].fence_local || graph.unresolved[i].iter().any(|u| u.self_call))
        .collect();
    let fences = reach_down(graph, base);
    // Upward: is every caller path fenced?
    let accepted = accepted_up(graph, |c, _site| fences[c]);

    for i in 0..graph.fns.len() {
        let f = &graph.fns[i];
        if feats[i].mutations.is_empty() || !R3_SCOPE.iter().any(|s| f.path.starts_with(s)) {
            continue;
        }
        if fences[i] || accepted[i] {
            continue;
        }
        let detail = if graph.callers[i].is_empty() {
            " (no callers found)".to_string()
        } else {
            match graph.callers[i].iter().find(|&&(c, _)| !fences[c] && !accepted[c]) {
                Some(&(c, _)) => format!(" (unfenced caller path via `{}`)", graph.fns[c].name),
                None => String::new(),
            }
        };
        findings.push(mk_finding(
            &f.path,
            line_at(&f.path, feats[i].mutations[0]),
            "R3",
            &format!(
                "fn `{}` writes persistent metadata with no write-queue enqueue, snapshot, or persist marker in this function, its callees, or on every caller path{detail}",
                f.name,
            ),
        ));
    }
}

// ------------------------------------------------------------- R9 ----

fn r9_atomic_bracketing(
    graph: &CallGraph,
    feats: &[Features],
    line_at: &impl Fn(&str, usize) -> usize,
    findings: &mut Vec<Finding>,
) {
    // Downward: does f (or anything it calls) contain `end_atomic`?
    let base: Vec<bool> = (0..graph.fns.len())
        .map(|i| !feats[i].ends.is_empty() || graph.unresolved[i].iter().any(|u| u.self_call))
        .collect();
    let closes = reach_down(graph, base);
    // Offsets in f after which the group can be considered closed: local
    // `end_atomic` tokens, call sites into transitively-closing callees,
    // and unresolved self-calls (conservative fallback).
    let close_events: Vec<Vec<usize>> = (0..graph.fns.len())
        .map(|i| {
            let mut ev = feats[i].ends.clone();
            ev.extend(graph.edges[i].iter().filter(|e| closes[e.callee]).map(|e| e.site));
            ev.extend(graph.unresolved[i].iter().filter(|u| u.self_call).map(|u| u.site));
            ev.sort_unstable();
            ev
        })
        .collect();
    // Upward: a function whose group stays open locally is accepted iff
    // every caller closes after the call site (or escalates in turn).
    let accepted = accepted_up(graph, |c, site| close_events[c].iter().any(|&e| e > site));

    for i in 0..graph.fns.len() {
        let f = &graph.fns[i];
        for &b in &feats[i].begins {
            let window_end = close_events[i].iter().copied().find(|&e| e > b);
            match window_end {
                Some(end) => {
                    for &x in feats[i].exits.iter().filter(|&&x| x > b && x < end) {
                        findings.push(mk_finding(
                            &f.path,
                            line_at(&f.path, x),
                            "R9",
                            &format!(
                                "early exit (`?`/`return`) between `begin_atomic` and its `end_atomic` in fn `{}` — the atomic group leaks open on this path",
                                f.name,
                            ),
                        ));
                    }
                }
                None => {
                    if !accepted[i] {
                        findings.push(mk_finding(
                            &f.path,
                            line_at(&f.path, b),
                            "R9",
                            &format!(
                                "fn `{}` opens an atomic group that neither it nor any caller path closes with `end_atomic`",
                                f.name,
                            ),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unguarded_indexing_is_narrow() {
        // Literal, range, and compound subscripts are out of scope.
        assert!(unguarded_indexing("{ a[0]; b[1..3]; c[i * 8]; }").is_empty());
        // For-bound and compared idents are guarded.
        assert!(unguarded_indexing("{ for i in 0..4 { w[i] = 0; } }").is_empty());
        assert!(unguarded_indexing("{ if i < n { w[i] = 0; } }").is_empty());
        assert!(unguarded_indexing("{ let i = x % n; w[i] = 0; }").is_empty());
        // A bare unbounded ident subscript is flagged.
        let hits = unguarded_indexing("{ w[i] = 0; }");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, "i");
    }

    #[test]
    fn ident_guard_ignores_shifts() {
        // `bank << 2` is a shift, not a comparison guard...
        assert!(!ident_guarded("{ let x = bank << 2; a[bank]; }", "bank"));
        // ...but a real comparison is.
        assert!(ident_guarded("{ debug_assert!(bank < n); a[bank]; }", "bank"));
    }
}
