//! Comment- and string-aware source preparation.
//!
//! Every rule scans a *masked* copy of the file in which comment and
//! string-literal bytes are blanked to spaces (newlines preserved), so
//! `".unwrap()"` inside a string or `// don't unwrap() here` inside a
//! comment never match. The masking is a small lexer that understands line
//! comments, nested block comments, string / raw-string / byte-string
//! literals, and the char-literal-versus-lifetime ambiguity.

/// Returns `src` with comment and string-literal content replaced by
/// spaces. Newlines are preserved, so byte offsets into the result map to
/// the same *lines* as the original (columns may shift on multi-byte
/// characters, which the rules never rely on).
pub fn mask(src: &str) -> String {
    lex(src).0
}

/// The complement of [`mask`]: only *comment* content survives (code and
/// string literals are blanked, newlines preserved). Rules about comment
/// conventions (R6) scan this, so markers inside string literals never
/// match.
pub fn comments(src: &str) -> String {
    lex(src).1
}

/// One pass over the source producing (code mask, comment mask).
fn lex(src: &str) -> (String, String) {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = String::with_capacity(src.len());
    let mut com = String::with_capacity(src.len());
    let mut i = 0;
    // Pushes one blanked character, keeping line structure.
    let blank = |out: &mut String, c: char| out.push(if c == '\n' { '\n' } else { ' ' });
    while i < n {
        let c = b[i];
        // Line comment (includes /// and //! doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                com.push(b[i]);
                i += 1;
            }
            continue;
        }
        // Block comment, possibly nested (includes /** */ doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1u32;
            out.push_str("  ");
            com.push_str("/*");
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push_str("  ");
                    com.push_str("/*");
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push_str("  ");
                    com.push_str("*/");
                    i += 2;
                } else {
                    blank(&mut out, b[i]);
                    com.push(b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw string: r"..." / r#"..."# / br#"..."# (any hash count).
        if c == 'r' || (c == 'b' && i + 1 < n && b[i + 1] == 'r') {
            let prev_ident = i > 0 && is_ident(b[i - 1]);
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            let mut hashes = 0usize;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if !prev_ident && j < n && b[j] == '"' {
                for _ in i..=j {
                    out.push(' ');
                    com.push(' ');
                }
                i = j + 1;
                // Consume until `"` followed by `hashes` hashes.
                while i < n {
                    if b[i] == '"' && b[i + 1..].iter().take(hashes).filter(|&&h| h == '#').count() == hashes {
                        for _ in 0..=hashes {
                            out.push(' ');
                            com.push(' ');
                        }
                        i += 1 + hashes;
                        break;
                    }
                    blank(&mut out, b[i]);
                    blank(&mut com, b[i]);
                    i += 1;
                }
                continue;
            }
        }
        // Byte-string prefix: blank the `b`, fall through to the `"` case.
        if c == 'b' && i + 1 < n && b[i + 1] == '"' && !(i > 0 && is_ident(b[i - 1])) {
            out.push(' ');
            com.push(' ');
            i += 1;
            continue;
        }
        // Ordinary string literal.
        if c == '"' {
            out.push(' ');
            com.push(' ');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    // `\<newline>` is a line continuation — keep the newline.
                    out.push(' ');
                    com.push(' ');
                    blank(&mut out, b[i + 1]);
                    blank(&mut com, b[i + 1]);
                    i += 2;
                } else if b[i] == '"' {
                    out.push(' ');
                    com.push(' ');
                    i += 1;
                    break;
                } else {
                    blank(&mut out, b[i]);
                    blank(&mut com, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime/loop-label.
        if c == '\'' {
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char literal: '\n', '\'', '\x41', '\u{1F600}'.
                out.push(' ');
                com.push(' ');
                i += 1;
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        out.push(' ');
                        com.push(' ');
                        blank(&mut out, b[i + 1]);
                        blank(&mut com, b[i + 1]);
                        i += 2;
                    } else if b[i] == '\'' {
                        out.push(' ');
                        com.push(' ');
                        i += 1;
                        break;
                    } else {
                        blank(&mut out, b[i]);
                        blank(&mut com, b[i]);
                        i += 1;
                    }
                }
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'' {
                // Simple char literal: 'x'.
                out.push_str("   ");
                com.push_str("   ");
                i += 3;
                continue;
            }
            // Lifetime or loop label: real code, keep it.
            out.push('\'');
            com.push(' ');
            i += 1;
            continue;
        }
        out.push(c);
        blank(&mut com, c);
        i += 1;
    }
    (out, com)
}

/// Whether `c` can appear in a Rust identifier.
pub fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of each line start in `s` (line 1 starts at offset 0).
pub fn line_starts(s: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in s.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 1-indexed line containing byte `offset`, given [`line_starts`] output.
pub fn line_of(starts: &[usize], offset: usize) -> usize {
    starts.partition_point(|&s| s <= offset)
}

/// 1-indexed line ranges (inclusive) of items annotated `#[cfg(test)]` in
/// masked source: from the attribute to the matching close brace of the
/// item it gates (or its trailing semicolon for braceless items).
pub fn cfg_test_ranges(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let starts = line_starts(masked);
    let mut ranges = Vec::new();
    for (at, _) in masked.match_indices("#[cfg(test)]") {
        let first_line = line_of(&starts, at);
        let mut i = at + "#[cfg(test)]".len();
        // Find the gated item's body: first top-level `{`, or `;` for
        // braceless items (`#[cfg(test)] use ...;`).
        let mut open = None;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    open = Some(i);
                    break;
                }
                b';' => break,
                _ => i += 1,
            }
        }
        let end = match open {
            Some(mut j) => {
                let mut depth = 0i64;
                loop {
                    match bytes.get(j) {
                        Some(b'{') => depth += 1,
                        Some(b'}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        None => break,
                        _ => {}
                    }
                    j += 1;
                }
                j.min(bytes.len().saturating_sub(1))
            }
            None => i.min(bytes.len().saturating_sub(1)),
        };
        ranges.push((first_line, line_of(&starts, end)));
    }
    ranges
}

/// One function's extent in masked source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub start: usize,
    /// Byte offset one past the body's closing brace.
    pub end: usize,
}

/// Extracts every `fn` item's span (nested functions included, each as its
/// own span) from masked source. Bodyless declarations (trait methods) are
/// skipped.
pub fn fn_spans(masked: &str) -> Vec<FnSpan> {
    // Byte-indexed scan is fine: we only branch on ASCII bytes.
    let bytes = masked.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 2 <= bytes.len() {
        if &bytes[i..i + 2] == b"fn"
            && (i == 0 || !is_ident_byte(bytes[i - 1]))
            && (i + 2 == bytes.len() || !is_ident_byte(bytes[i + 2]))
        {
            let mut j = i + 2;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            let name_start = j;
            while j < bytes.len() && is_ident_byte(bytes[j]) {
                j += 1;
            }
            if j == name_start {
                i += 2;
                continue; // `fn` not followed by a name (e.g. `Fn()` trait sugar)
            }
            let name = masked[name_start..j].to_string();
            // Find the body `{` outside any parens, or `;` for bodyless fns.
            let mut paren = 0i64;
            let mut body = None;
            while j < bytes.len() {
                match bytes[j] {
                    b'(' | b'[' => paren += 1,
                    b')' | b']' => paren -= 1,
                    b'{' if paren == 0 => {
                        body = Some(j);
                        break;
                    }
                    b';' if paren == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(mut k) = body {
                let mut depth = 0i64;
                while k < bytes.len() {
                    match bytes[k] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                spans.push(FnSpan { name, start: i, end: (k + 1).min(bytes.len()) });
            }
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

/// ASCII identifier-byte check (multi-byte UTF-8 bytes are all >= 0x80 and
/// count as identifier-ish to stay conservative).
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Every offset where `needle` occurs in `hay` as a standalone token (the
/// neighbouring bytes are not identifier bytes).
pub fn token_offsets(hay: &str, needle: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    hay.match_indices(needle)
        .filter(|&(at, _)| {
            let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
            let after = at + needle.len();
            let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
            before_ok && after_ok
        })
        .map(|(at, _)| at)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_doc_comments() {
        let m = mask("let x = 1; // unwrap() here\n/// docs unwrap()\nlet y = 2;");
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let x = 1;"));
        assert!(m.contains("let y = 2;"));
        assert_eq!(m.matches('\n').count(), 2, "newlines preserved");
    }

    #[test]
    fn masks_nested_block_comments() {
        let m = mask("a /* outer /* inner panic!() */ still */ b");
        assert!(!m.contains("panic"));
        assert!(m.starts_with("a "));
        assert!(m.ends_with(" b"));
    }

    #[test]
    fn masks_strings_and_escapes() {
        let m = mask(r#"let s = "call .unwrap() \" quoted"; s.len()"#);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("s.len()"));
    }

    #[test]
    fn string_line_continuations_keep_newlines() {
        let src = "let s = \"\\\nline two \\\nline three\";\nlet t = 1;";
        let m = mask(src);
        assert_eq!(m.matches('\n').count(), src.matches('\n').count());
        assert!(!m.contains("line two"));
        assert_eq!(comments(src).matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn masks_raw_and_byte_strings() {
        let m = mask(r##"let s = r#"panic!("x")"#; let b = b"panic!"; let br2 = br"panic!";"##);
        assert!(!m.contains("panic"), "got: {m}");
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let m = mask("fn f<'a>(x: &'a str) -> char { let q = '\\''; let z = 'z'; q }");
        assert!(m.contains("<'a>"));
        assert!(m.contains("&'a str"));
        assert!(!m.contains("'z'"));
    }

    #[test]
    fn cfg_test_ranges_cover_the_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let ranges = cfg_test_ranges(&mask(src));
        assert_eq!(ranges, vec![(2, 5)]);
    }

    #[test]
    fn fn_spans_find_names_and_bodies() {
        let src = "fn alpha() { beta(); }\nstruct S;\nimpl S {\n    fn beta(&self) -> u8 { 7 }\n}\n";
        let spans = fn_spans(&mask(src));
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
        assert!(mask(src)[spans[1].start..spans[1].end].contains('7'));
    }

    #[test]
    fn token_offsets_respect_boundaries() {
        assert_eq!(token_offsets("thread_rng()", "thread_rng").len(), 1);
        assert!(token_offsets("my_thread_rng()", "thread_rng").is_empty());
        assert!(token_offsets("thread_rngx()", "thread_rng").is_empty());
    }
}
