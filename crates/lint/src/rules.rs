//! The nine workspace rules (R1–R9) and the per-file rule driver.
//!
//! Every per-file rule works on the masked source from [`crate::lexer`]
//! (comments and string literals blanked), except R6, which scans the
//! complementary *comment* mask because to-do markers live in comments.
//! Rule scoping is path-based, so tests can exercise rules by handing
//! [`crate::lint_source`] a fabricated repo-relative path.
//!
//! Three rules are *interprocedural* and live in [`crate::dataflow`],
//! which runs over the whole corpus at once: R1's reachability extension,
//! R3 (persist/fence pairing across caller paths), and R9 (atomic-group
//! bracketing). This module keeps their catalog entries and the shared
//! scope/token constants.

use crate::lexer::{
    cfg_test_ranges, comments, is_ident_byte, line_of, line_starts, mask,
    token_offsets,
};
use std::fmt;

/// Finding severity. Both levels fail the gate when not baselined; the
/// distinction is informational (warn-level rules are style/process, not
/// correctness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Correctness or determinism hazard.
    Error,
    /// Process/style requirement.
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warn => write!(f, "warn"),
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule id ("R1".."R9").
    pub rule: &'static str,
    /// Rule severity.
    pub severity: Severity,
    /// Stable, human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// The baseline key: everything except the line number, so moving code
    /// within a file does not invalidate the allowlist.
    pub fn key(&self) -> String {
        format!("{} · {} · {}", self.path, self.rule, self.message)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} · {} · {} · {}", self.path, self.line, self.rule, self.severity, self.message)
    }
}

/// Static description of one rule, for `--list-rules` and `--explain`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule id ("R1".."R9").
    pub id: &'static str,
    /// Rule severity.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
    /// Multi-line rationale and remedy, shown by `--explain`.
    pub explanation: &'static str,
}

/// All rules, in id order.
pub const RULES: [RuleInfo; 9] = [
    RuleInfo {
        id: "R1",
        severity: Severity::Error,
        summary: "no panics in, or reachable from, the crash/recovery path",
        explanation: "\
The protocol engines, the recovery engine, the controller, and the hybrid
mapper run on the crash/recovery path: a panic there is indistinguishable
from the very data-loss event the system exists to survive, and it skips
the typed IntegrityError/RecoveryError reporting the callers rely on.
Two layers:
  1. Per-file: unwrap/expect/panic!/unreachable! anywhere under
     crates/core/src/protocol/, crates/core/src/recovery.rs,
     crates/core/src/controller.rs, crates/core/src/hybrid.rs.
  2. Reachability: any function transitively callable from a
     recover/crash/dirty_shutdown entry point in crates/core or
     crates/nvm — whatever file it lives in — must be free of the same
     four patterns and of unguarded bare-identifier indexing (`buf[i]`
     with no visible bound on `i`). Ambiguous calls count as reachable
     (over-approximation), so uncertainty never hides a panic.
Non-test code only (#[cfg(test)] items are exempt).
Remedy: return IntegrityError / RecoveryError (add a variant if none
fits); for infallible slice-to-array conversions prefer explicit
fold/indexing helpers over .try_into().expect(...); bound-check
subscripts (a debug_assert! of the bound also satisfies the guard
heuristic, but prefer a real check on the crash path).",
    },
    RuleInfo {
        id: "R2",
        severity: Severity::Error,
        summary: "no nondeterminism sources in simulation/model code",
        explanation: "\
The simulator's correctness argument is bit-identical replay: the same
seed must produce the same trace, cycle counts, and recovery decisions on
every run. thread_rng/SystemTime/Instant::now inject wall-clock or OS
entropy, and iterating a std HashMap (RandomState) makes tie-breaks
depend on hasher seeding.
Scope: crates/core/src/, crates/sim/src/, crates/workloads/src/,
crates/trace/src/ — non-test code only. The trace crate is in scope
because its artifacts carry the same byte-identity guarantee as the
simulation results they describe. The sharded controller
(crates/core/src/shard.rs) is explicitly in scope: multi-shard runs
promise byte-identical artifacts at any AMNT_JOBS, so a nondeterminism
source in shard routing or epoch merging breaks every downstream
determinism gate at once.
Remedy: use amnt_prng::Rng seeded from the run configuration; iterate
BTreeMap (or sort keys first) wherever iteration order can reach a
result, a statistic, or an eviction/prune decision.",
    },
    RuleInfo {
        id: "R3",
        severity: Severity::Error,
        summary: "persistent-metadata mutation must reach an enqueue/fence on every caller path",
        explanation: "\
Protocol code that mutates persistent metadata (raw NVM writes via
write_block_untimed / write_bytes_untimed / write_u64) must reach — in
the same protocol step — a durability action: the write-queue timeline
(timeline.write / timeline.reset), a rollback snapshot
(snapshot_before_lazy_update), or a persist marker (mark_persisted).
Otherwise a crash between the mutation and whatever later fences it can
strand metadata that recovery never learns about.
The check is interprocedural: a mutation is accepted when the function
itself fences (the leaf case), when one of its callees does, or when
*every* caller path fences after the call. Unresolved `self.`-method
calls are assumed to fence (under-approximation), so call-graph
uncertainty never fails the gate falsely; `--dump-callgraph` shows what
resolution decided.
Scope: mutations in crates/core/src/protocol/ and
crates/core/src/controller.rs; caller paths may run through any crate.
Remedy: pair the mutation with its durability action in one function
where possible; a genuinely cross-function pairing is now accepted as
long as every caller path fences.",
    },
    RuleInfo {
        id: "R4",
        severity: Severity::Error,
        summary: "every lib.rs must carry #![forbid(unsafe_code)] and #![warn(missing_docs)]",
        explanation: "\
The workspace's safety story is 'no unsafe anywhere, docs everywhere';
both are crate-level attributes that silently stop applying when a new
crate forgets them.
Scope: every */src/lib.rs.
Remedy: add #![forbid(unsafe_code)] and #![warn(missing_docs)] at the
top of the crate root.",
    },
    RuleInfo {
        id: "R5",
        severity: Severity::Error,
        summary: "no truncating casts on cycle/timestamp variables",
        explanation: "\
Cycle counters are u64 and long simulations overflow 32 bits; a
truncating `as u32` / `as usize` on a variable named like a
cycle/tick/timestamp (or the conventional `t`) silently wraps and
corrupts stall accounting and wear statistics.
Scope: crates/core/src/timing.rs and crates/sim/src/.
Remedy: keep cycle arithmetic in u64; narrow only derived, provably
small quantities (and rename them so the intent is visible).",
    },
    RuleInfo {
        id: "R6",
        severity: Severity::Warn,
        summary: "to-do markers (TODO/FIXME) must reference an issue tag",
        explanation: "\
Unanchored TODOs rot. Each TODO/FIXME must cite an issue on the same
line, either as #<number> or as an AMNT-<number> tag, so it can be found
and retired.
Scope: all scanned files (comments included).
Remedy: write `TODO(#123): ...` or `FIXME(AMNT-7): ...`, or file the
issue and delete the comment.",
    },
    RuleInfo {
        id: "R7",
        severity: Severity::Error,
        summary: "no raw thread spawning outside the experiment executor",
        explanation: "\
All host parallelism flows through amnt_bench::exec, whose job pool
collects results in deterministic declaration order — that is what makes
`AMNT_JOBS` a pure speed knob and keeps results/*.json byte-identical at
any worker count. A stray thread::spawn / thread::scope / thread::Builder
elsewhere reintroduces scheduling-dependent ordering (and, in simulation
crates, breaks the single-threaded determinism argument outright).
Scope: all scanned non-test code except crates/bench/src/exec.rs.
Remedy: express the work as jobs and run them with
amnt_bench::exec::run_jobs or a bench Grid; if a new subsystem genuinely
needs its own threading model, extend exec instead of bypassing it.",
    },
    RuleInfo {
        id: "R8",
        severity: Severity::Error,
        summary: "no println!/eprintln!/dbg! in engine crates — observe through the trace layer",
        explanation: "\
The engine crates are instrumented through amnt-trace: counters,
histograms, spans, and epoch samples that serialise into deterministic
sidecar artifacts. A stray println!/eprintln!/dbg! in engine code
bypasses that layer — it interleaves nondeterministically under the
parallel executor, pollutes the experiment binaries' stdout tables, and
(for dbg!) ships debug scaffolding. Experiment/CLI binaries own their
stdout and are exempt.
Scope: crates/core/src/, crates/sim/src/, crates/cache/src/,
crates/nvm/src/ — non-test code only; src/bin/ directories are exempt.
Remedy: record the fact through the component's CompTrace / the
controller's Tracer (a counter or instant event), or return it as data;
if it is operator output, it belongs in a binary under src/bin/ or
crates/bench.",
    },
    RuleInfo {
        id: "R9",
        severity: Severity::Error,
        summary: "begin_atomic must be matched by end_atomic on every path, interprocedurally",
        explanation: "\
The NVM device's atomic group (begin_atomic .. end_atomic) defers
visibility of enclosed writes until the group commits; a group left open
silently swallows every later write into a bracket that never commits,
which a crash then discards wholesale. Two hazards:
  1. Early exit: a `?` or `return` between begin_atomic and the first
     point the group can close (a local end_atomic, a call into a
     function that transitively ends the group, or an unresolved
     `self.`-call) leaks the group open on that path.
  2. Unmatched open: a begin_atomic with no closing event at all is
     accepted only if every caller path ends the group after the call
     (checked to a fixpoint through the call graph); otherwise flagged.
Unresolved `self.`-calls are assumed to close (under-approximation, same
direction as R3).
Scope: all scanned non-test code.
Remedy: close the group before every exit (match on the Result, end the
group in both arms, then propagate), or document the caller-side close by
keeping it visible in the direct caller.",
    },
];

/// Looks up one rule's metadata by id (case-insensitive).
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id.eq_ignore_ascii_case(id))
}

/// Crash-critical scope for R1's per-file layer (the reachability layer
/// in [`crate::dataflow`] skips these files' panic patterns to avoid
/// duplicate findings, but still applies the indexing check).
pub(crate) const R1_SCOPE: [&str; 4] = [
    "crates/core/src/protocol/",
    "crates/core/src/recovery.rs",
    "crates/core/src/controller.rs",
    "crates/core/src/hybrid.rs",
];

/// Determinism scope for R2. The trace crate is included: its sidecar
/// artifacts carry the same byte-identity guarantee as the results. The
/// `crates/core/src/` prefix deliberately covers the sharded controller
/// (`shard.rs`) — multi-shard artifacts are byte-compared across worker
/// counts, so shard routing and epoch merging must stay entropy-free
/// (locked by `shard_module_is_in_r2_scope` below).
const R2_SCOPE: [&str; 4] =
    ["crates/core/src/", "crates/sim/src/", "crates/workloads/src/", "crates/trace/src/"];

/// Persist/fence-pairing scope for R3 (where *mutations* are policed;
/// fences may be found on caller paths in any crate).
pub(crate) const R3_SCOPE: [&str; 2] =
    ["crates/core/src/protocol/", "crates/core/src/controller.rs"];

/// Engine-crate scope for R8 (print macros). `src/bin/` subtrees are
/// exempt — binaries own their stdout.
const R8_SCOPE: [&str; 4] =
    ["crates/core/src/", "crates/sim/src/", "crates/cache/src/", "crates/nvm/src/"];

/// Raw-NVM mutation entry points (R3).
pub(crate) const R3_MUTATIONS: [&str; 3] =
    [".write_block_untimed(", ".write_bytes_untimed(", ".write_u64("];

/// Durability/ordering actions that discharge an R3 mutation.
pub(crate) const R3_FENCES: [&str; 4] =
    ["timeline.write(", "timeline.reset(", "snapshot_before_lazy_update(", "mark_persisted("];

/// Runs the per-file rules on one file's content under its repo-relative
/// `path` (forward slashes). The path drives rule scoping. The
/// interprocedural rules (R1's reachability layer, R3, R9) are *not* run
/// here — [`crate::lint_corpus`] layers them on top.
pub(crate) fn per_file_findings(path: &str, content: &str) -> Vec<Finding> {
    let masked = mask(content);
    let starts = line_starts(&masked);
    let test_ranges = cfg_test_ranges(&masked);
    let in_test = |line: usize| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);
    let mut findings = Vec::new();

    // R1: crash-path panics.
    if R1_SCOPE.iter().any(|s| path.starts_with(s)) {
        let patterns: [(&str, &str); 4] = [
            (".unwrap()", "`.unwrap()` on the crash path — return a typed error"),
            (".expect(", "`.expect(...)` on the crash path — return a typed error"),
            ("panic!", "`panic!` on the crash path — return a typed error"),
            ("unreachable!", "`unreachable!` on the crash path — return a typed error"),
        ];
        for (pat, msg) in patterns {
            for at in substr_offsets(&masked, pat) {
                let line = line_of(&starts, at);
                if !in_test(line) {
                    findings.push(mk_finding(path, line, "R1", msg));
                }
            }
        }
    }

    // R2: nondeterminism sources.
    if R2_SCOPE.iter().any(|s| path.starts_with(s)) {
        let tokens: [(&str, &str); 3] = [
            ("thread_rng", "`thread_rng` — seed an amnt_prng::Rng from the run config instead"),
            ("SystemTime", "`SystemTime` — wall-clock time breaks deterministic replay"),
            ("Instant", "`Instant` — host timing breaks deterministic replay"),
        ];
        for (tok, msg) in tokens {
            for at in token_offsets(&masked, tok) {
                let line = line_of(&starts, at);
                if !in_test(line) {
                    findings.push(mk_finding(path, line, "R2", msg));
                }
            }
        }
        for (ident, at) in hashmap_iterations(&masked) {
            let line = line_of(&starts, at);
            if !in_test(line) {
                findings.push(mk_finding(
                    path,
                    line,
                    "R2",
                    &format!(
                        "iteration over std HashMap `{ident}` — order is hasher-seeded; use BTreeMap or sort"
                    ),
                ));
            }
        }
    }

    // R3 moved to crate::dataflow — fence pairing is judged over the call
    // graph now, and a single-file corpus reproduces the old leaf-local
    // behavior (no callers to rescue an unfenced mutation).

    // R4: crate-root hygiene attributes.
    if path.ends_with("src/lib.rs") {
        for (attr, what) in [
            ("#![forbid(unsafe_code)]", "missing `#![forbid(unsafe_code)]` at crate root"),
            ("#![warn(missing_docs)]", "missing `#![warn(missing_docs)]` at crate root"),
        ] {
            if !masked.contains(attr) {
                findings.push(mk_finding(path, 1, "R4", what));
            }
        }
    }

    // R5: truncating casts on cycle/timestamp variables.
    if path == "crates/core/src/timing.rs" || path.starts_with("crates/sim/src/") {
        for (ident, at) in truncating_time_casts(&masked) {
            let line = line_of(&starts, at);
            if !in_test(line) {
                findings.push(mk_finding(
                    path,
                    line,
                    "R5",
                    &format!("truncating cast on cycle/timestamp variable `{ident}` — keep it u64"),
                ));
            }
        }
    }

    // R7: raw thread spawning outside the executor. Substring match: the
    // patterns carry their own `::` path context, so they catch both
    // `std::thread::spawn` and `thread::spawn` after a use-import.
    if path != "crates/bench/src/exec.rs" {
        let patterns: [(&str, &str); 3] = [
            ("thread::spawn", "`thread::spawn` outside the executor — use amnt_bench::exec::run_jobs"),
            ("thread::scope", "`thread::scope` outside the executor — use amnt_bench::exec::run_jobs"),
            ("thread::Builder", "`thread::Builder` outside the executor — use amnt_bench::exec::run_jobs"),
        ];
        for (pat, msg) in patterns {
            for at in substr_offsets(&masked, pat) {
                let line = line_of(&starts, at);
                if !in_test(line) {
                    findings.push(mk_finding(path, line, "R7", msg));
                }
            }
        }
    }

    // R8: print macros in engine code. Token-bounded so `println` never
    // also matches inside `eprintln`; the `!` requirement keeps plain
    // identifiers (a local named `dbg`) out.
    if R8_SCOPE.iter().any(|s| path.starts_with(s)) && !path.contains("/bin/") {
        let macros: [(&str, &str); 3] = [
            ("println", "`println!` in engine code — record it through the trace layer"),
            ("eprintln", "`eprintln!` in engine code — record it through the trace layer"),
            ("dbg", "`dbg!` in engine code — record it through the trace layer"),
        ];
        for (name, msg) in macros {
            for at in token_offsets(&masked, name) {
                if !masked[at + name.len()..].starts_with('!') {
                    continue;
                }
                let line = line_of(&starts, at);
                if !in_test(line) {
                    findings.push(mk_finding(path, line, "R8", msg));
                }
            }
        }
    }

    // R6: to-do marker anchoring — scans the comment mask, since the
    // markers live in comments (and markers quoted in string literals,
    // like this linter's own messages, must not match).
    for (idx, raw) in comments(content).lines().enumerate() {
        let has_marker = ["TODO", "FIXME"].iter().any(|m| {
            raw.match_indices(m).any(|(at, _)| {
                let b = raw.as_bytes();
                (at == 0 || !is_ident_byte(b[at - 1]))
                    && (at + m.len() >= b.len() || !is_ident_byte(b[at + m.len()]))
            })
        });
        if has_marker && !has_issue_tag(raw) {
            findings.push(mk_finding(
                path,
                idx + 1,
                "R6",
                "TODO/FIXME without an issue tag — write TODO(#123) or TODO(AMNT-7)",
            ));
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    findings
}

pub(crate) fn mk_finding(path: &str, line: usize, rule: &'static str, message: &str) -> Finding {
    let severity = rule_info(rule).map(|r| r.severity).unwrap_or(Severity::Error);
    Finding { path: path.to_string(), line, rule, severity, message: message.to_string() }
}

/// Plain substring occurrences (R1's patterns carry their own `.`/`!`
/// delimiters, so token boundaries are unnecessary).
fn substr_offsets(hay: &str, needle: &str) -> Vec<usize> {
    hay.match_indices(needle).map(|(at, _)| at).collect()
}

/// Method suffixes that iterate a map (R2).
const ITER_SUFFIXES: [&str; 9] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// What a `let` binding does to its name's HashMap taint (R2).
enum BindKind {
    /// Bare rebind of another name (`let p = &mut self.map;`): the alias
    /// inherits whatever the source name's taint is *at this point*.
    Alias(String),
    /// RHS mentions `HashMap` (constructor or ascription): tainted.
    Tainted,
    /// Anything else (`m.len()`, a comparison, a different type): the
    /// binding shadows the name and kills any earlier taint.
    Clean,
}

/// One `let` binding: where the bound name starts, and what it does.
struct Bind {
    offset: usize,
    name: String,
    kind: BindKind,
}

/// Identifiers whose value is a std HashMap *at the point of iteration*,
/// paired with each offset where they are iterated.
///
/// Position-aware heuristic in three parts: names declared as `HashMap`
/// anywhere (`x: HashMap<..>` ascriptions and struct fields) are tainted
/// file-wide; `let` bindings are classified in textual order as bare
/// aliases (`let p = &mut self.map;` — taint follows the source),
/// tainting (`= HashMap::new()`), or clean (a shadowing rebind like
/// `let m = m.len();` *kills* the taint from that point on); each
/// iteration site (`x.iter()`, `for .. in &x`, ...) then resolves its
/// ident through the nearest preceding binding chain.
fn hashmap_iterations(masked: &str) -> Vec<(String, usize)> {
    let declared = declared_hashmap_names(masked);
    let binds = let_bindings(masked);
    let mut hits: Vec<(String, usize)> = iteration_sites(masked)
        .into_iter()
        .filter(|(ident, at)| is_tainted(&declared, &binds, ident, *at))
        .collect();
    hits.sort_by_key(|(_, at)| *at);
    hits.dedup();
    hits
}

/// Names declared with a `HashMap` type: `x: HashMap<..>`,
/// `x: Option<HashMap<..>>`, struct fields, fn params. These taint the
/// name file-wide (fields have no binding position to track).
fn declared_hashmap_names(masked: &str) -> Vec<String> {
    let bytes = masked.as_bytes();
    let mut idents: Vec<String> = Vec::new();
    for (at, _) in masked.match_indices("HashMap") {
        // Walk back over `Option<`-style wrappers to the `:` that binds
        // this type to a name (`::` is path syntax, not a declaration —
        // constructor RHSes are classified by `let_bindings` instead).
        let mut i = at;
        while i > 0 {
            let b = bytes[i - 1];
            if b == b':' {
                if i >= 2 && bytes[i - 2] == b':' {
                    break;
                }
                let mut j = i - 1;
                while j > 0 && bytes[j - 1].is_ascii_whitespace() {
                    j -= 1;
                }
                let end = j;
                while j > 0 && is_ident_byte(bytes[j - 1]) {
                    j -= 1;
                }
                if j < end {
                    let name = masked[j..end].to_string();
                    if name != "mut" && !idents.contains(&name) {
                        idents.push(name);
                    }
                }
                break;
            }
            if b == b'<' || b == b' ' || b == b'&' || is_ident_byte(b) {
                i -= 1;
                continue;
            }
            break;
        }
    }
    idents
}

/// Every `let [mut] name [: Type] = rhs;` in the file, in textual order.
fn let_bindings(masked: &str) -> Vec<Bind> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for at in token_offsets(masked, "let") {
        let mut i = at + 3;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if masked[i..].starts_with("mut") && bytes.get(i + 3).is_some_and(|b| b.is_ascii_whitespace())
        {
            i += 4;
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
        }
        let name_start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        if i == name_start {
            continue; // destructuring pattern, not a plain name
        }
        let name = masked[name_start..i].to_string();
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if bytes.get(i) == Some(&b':') {
            // Type ascription: skip to the `=` (types carry no `=`). A
            // `(`-follower means this was `if let Some(x)`-style, which
            // the name read above already rejected.
            while i < bytes.len() && bytes[i] != b'=' && bytes[i] != b';' {
                i += 1;
            }
        }
        if bytes.get(i) != Some(&b'=') || bytes.get(i + 1) == Some(&b'=') {
            continue;
        }
        let rhs_start = i + 1;
        let rhs_end = masked[rhs_start..].find(';').map_or(masked.len(), |p| rhs_start + p);
        out.push(Bind {
            offset: name_start,
            name,
            kind: classify_rhs(masked[rhs_start..rhs_end].trim()),
        });
    }
    out
}

/// Classifies a `let` RHS for taint purposes. A bare rebind strips an
/// optional `&` / `&mut ` and `self.` owner; anything left that is a pure
/// identifier aliases that name.
fn classify_rhs(rhs: &str) -> BindKind {
    let mut r = rhs.strip_prefix('&').unwrap_or(rhs).trim_start();
    r = r.strip_prefix("mut ").unwrap_or(r).trim_start();
    r = r.strip_prefix("self.").unwrap_or(r);
    if !r.is_empty()
        && r.bytes().all(is_ident_byte)
        && !r.as_bytes()[0].is_ascii_digit()
        && r != "mut"
    {
        return BindKind::Alias(r.to_string());
    }
    if rhs.contains("HashMap") {
        return BindKind::Tainted;
    }
    BindKind::Clean
}

/// Offsets where some identifier is iterated: `x.iter()`-style method
/// suffixes and `for .. in &x` loops. Returns `(ident, ident offset)`.
fn iteration_sites(masked: &str) -> Vec<(String, usize)> {
    let bytes = masked.as_bytes();
    let mut sites = Vec::new();
    for pat in ITER_SUFFIXES {
        for (pos, _) in masked.match_indices(pat) {
            let mut j = pos;
            while j > 0 && is_ident_byte(bytes[j - 1]) {
                j -= 1;
            }
            if j < pos && !bytes[j].is_ascii_digit() {
                sites.push((masked[j..pos].to_string(), j));
            }
        }
    }
    for (pos, _) in masked.match_indices("in &") {
        let mut j = pos + 4;
        if masked[j..].starts_with("mut ") {
            j += 4;
        }
        let start = j;
        while j < bytes.len() && is_ident_byte(bytes[j]) {
            j += 1;
        }
        if j > start && !bytes[start].is_ascii_digit() {
            sites.push((masked[start..j].to_string(), start));
        }
    }
    sites
}

/// Resolves `name`'s taint at offset `at` through the binding chain:
/// nearest preceding binding wins; aliases recurse into their source at
/// the alias's own position (offsets strictly decrease, so this
/// terminates); no binding falls back to the file-wide declared set.
fn is_tainted(declared: &[String], binds: &[Bind], name: &str, at: usize) -> bool {
    let mut name = name.to_string();
    let mut at = at;
    loop {
        let nearest = binds
            .iter()
            .filter(|b| b.name == name && b.offset < at)
            .max_by_key(|b| b.offset);
        match nearest {
            None => return declared.contains(&name),
            Some(b) => match &b.kind {
                BindKind::Tainted => return true,
                BindKind::Clean => return false,
                BindKind::Alias(src) => {
                    name = src.clone();
                    at = b.offset;
                }
            },
        }
    }
}

/// Occurrences of `<time-ish ident> as <narrow int>` in masked source.
fn truncating_time_casts(masked: &str) -> Vec<(String, usize)> {
    let bytes = masked.as_bytes();
    let mut hits = Vec::new();
    for at in token_offsets(masked, "as") {
        let rest = masked[at + 2..].trim_start();
        let narrow = ["u32", "usize", "u16", "u8", "i32", "i16", "i8"]
            .iter()
            .any(|t| rest.starts_with(t) && !rest[t.len()..].starts_with(|c: char| is_ident_byte(c as u8)));
        if !narrow {
            continue;
        }
        // Preceding token must be a plain identifier (skip `)`-terminated
        // expressions: we only claim confidence about named variables).
        let mut j = at;
        while j > 0 && bytes[j - 1] == b' ' {
            j -= 1;
        }
        let end = j;
        while j > 0 && is_ident_byte(bytes[j - 1]) {
            j -= 1;
        }
        if j == end {
            continue;
        }
        let ident = &masked[j..end];
        let last = ident.rsplit('_').next().unwrap_or(ident);
        let timeish = ident == "t"
            || ["cycle", "tick", "time"].iter().any(|k| ident.to_ascii_lowercase().contains(k))
            || last == "t";
        if timeish {
            hits.push((ident.to_string(), j));
        }
    }
    hits
}

/// Whether a to-do marker line carries an issue anchor: `#<digits>` or
/// `AMNT-<digits>`.
fn has_issue_tag(line: &str) -> bool {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'#' && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
            return true;
        }
    }
    for (at, _) in line.match_indices("AMNT-") {
        if bytes.get(at + 5).is_some_and(|c| c.is_ascii_digit()) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_table_is_consistent() {
        let ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec!["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"]);
        assert!(rule_info("r3").is_some());
        assert!(rule_info("r9").is_some());
        assert!(rule_info("R10").is_none());
        // The cross-function R3 ROADMAP item is closed; no explanation may
        // still point at it as future work.
        for r in RULES {
            assert!(!r.explanation.contains("ROADMAP"), "{} still defers to ROADMAP", r.id);
        }
    }

    #[test]
    fn finding_key_drops_the_line() {
        let f = mk_finding("a/b.rs", 42, "R1", "msg");
        assert_eq!(f.key(), "a/b.rs · R1 · msg");
        assert_eq!(format!("{f}"), "a/b.rs:42 · R1 · error · msg");
    }

    #[test]
    fn issue_tags_recognised() {
        assert!(has_issue_tag("// TODO(#12): fix"));
        assert!(has_issue_tag("// FIXME AMNT-3 tighten"));
        assert!(!has_issue_tag("// TODO: someday"));
        assert!(!has_issue_tag("// TODO(AMNT-): someday"));
    }

    #[test]
    fn shard_module_is_in_r2_scope() {
        // The sharded controller promises byte-identical artifacts at any
        // worker count; every R2 nondeterminism source must fire there.
        let src = "fn route() {\n\
                   let r = thread_rng();\n\
                   let t = std::time::Instant::now();\n\
                   let m: HashMap<u64, u8> = HashMap::new();\n\
                   for (k, v) in &m {}\n\
                   }\n";
        let findings = per_file_findings("crates/core/src/shard.rs", src);
        let r2: Vec<_> = findings.iter().filter(|f| f.rule == "R2").collect();
        assert_eq!(r2.len(), 3, "{findings:?}");
        // Same source outside the determinism scope stays silent on R2.
        let outside = per_file_findings("crates/bench/src/bin/shard_bench.rs", src);
        assert!(outside.iter().all(|f| f.rule != "R2"), "{outside:?}");
    }

    #[test]
    fn hashmap_iteration_heuristic() {
        let src = "let mut m: HashMap<u64, u8> = HashMap::new();\nfor (k, v) in &m {}\nm.insert(1, 2);\nlet n: BTreeMap<u64, u8> = BTreeMap::new();\nn.iter();\n";
        let hits = hashmap_iterations(&mask(src));
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, "m");
    }

    #[test]
    fn hashmap_alias_rebinding_is_followed() {
        // Direct alias, alias-of-alias, and a `self.`-owned field rebind
        // all inherit the HashMap taint; iterating any of them fires.
        // Hits come back in file order.
        let src = "struct S { map: HashMap<u64, u8> }\n\
                   let p = &self.map;\n\
                   let q = p;\n\
                   q.values();\n\
                   p.iter();\n";
        let hits = hashmap_iterations(&mask(src));
        let names: Vec<&str> = hits.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["q", "p"], "{hits:?}");
    }

    #[test]
    fn hashmap_mut_alias_is_followed() {
        // `&mut self.map` is as much an alias as `&self.map`.
        let src = "struct S { map: HashMap<u64, u8> }\n\
                   let p = &mut self.map;\n\
                   for k in p.keys() {}\n";
        let hits = hashmap_iterations(&mask(src));
        let names: Vec<&str> = hits.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["p"], "{hits:?}");
    }

    #[test]
    fn hashmap_shadowing_rebind_kills_taint() {
        // A shadowing `let` with a non-map RHS ends the taint: iterating
        // the name *after* the rebind is clean, *before* it still fires.
        let src = "let m: HashMap<u64, u8> = HashMap::new();\n\
                   m.iter();\n\
                   let m = sorted_keys();\n\
                   m.iter();\n\
                   let p = &m;\n\
                   p.iter();\n";
        let hits = hashmap_iterations(&mask(src));
        assert_eq!(hits.len(), 1, "{hits:?}");
        // The surviving hit is the pre-shadow iteration on line 2.
        let starts = crate::lexer::line_starts(src);
        assert_eq!(crate::lexer::line_of(&starts, hits[0].1), 2);
    }

    #[test]
    fn hashmap_alias_ignores_comparisons_and_calls() {
        // `==` is a comparison, not a rebind; a method-call RHS produces a
        // different value; neither may taint the LHS.
        let src = "let m: HashMap<u64, u8> = HashMap::new();\n\
                   let same = other == m;\n\
                   let n = m.len();\n\
                   same.iter();\n\
                   n.iter();\n";
        let hits = hashmap_iterations(&mask(src));
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn time_cast_heuristic() {
        let hits = truncating_time_casts("let a = total_cycles as u32; let b = bank_mask as u32; let c = t as usize; let d = t as u64;");
        let names: Vec<&str> = hits.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["total_cycles", "t"]);
    }
}
