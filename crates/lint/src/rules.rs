//! The eight workspace rules (R1–R8) and the per-file rule driver.
//!
//! Every rule works on the masked source from [`crate::lexer`] (comments
//! and string literals blanked), except R6, which scans the complementary
//! *comment* mask because to-do markers live in comments. Rule scoping is
//! path-based, so tests can exercise rules by handing [`lint_source`] a
//! fabricated repo-relative path.

use crate::lexer::{
    cfg_test_ranges, comments, fn_spans, is_ident_byte, line_of, line_starts, mask,
    token_offsets,
};
use std::fmt;

/// Finding severity. Both levels fail the gate when not baselined; the
/// distinction is informational (warn-level rules are style/process, not
/// correctness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Correctness or determinism hazard.
    Error,
    /// Process/style requirement.
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warn => write!(f, "warn"),
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule id ("R1".."R8").
    pub rule: &'static str,
    /// Rule severity.
    pub severity: Severity,
    /// Stable, human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// The baseline key: everything except the line number, so moving code
    /// within a file does not invalidate the allowlist.
    pub fn key(&self) -> String {
        format!("{} · {} · {}", self.path, self.rule, self.message)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} · {} · {} · {}", self.path, self.line, self.rule, self.severity, self.message)
    }
}

/// Static description of one rule, for `--list-rules` and `--explain`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule id ("R1".."R8").
    pub id: &'static str,
    /// Rule severity.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
    /// Multi-line rationale and remedy, shown by `--explain`.
    pub explanation: &'static str,
}

/// All rules, in id order.
pub const RULES: [RuleInfo; 8] = [
    RuleInfo {
        id: "R1",
        severity: Severity::Error,
        summary: "no unwrap/expect/panic/unreachable in crash-critical modules",
        explanation: "\
The protocol engines, the recovery engine, the controller, and the hybrid
mapper run on the crash/recovery path: a panic there is indistinguishable
from the very data-loss event the system exists to survive, and it skips
the typed IntegrityError/RecoveryError reporting the callers rely on.
Scope: crates/core/src/protocol/, crates/core/src/recovery.rs,
crates/core/src/controller.rs, crates/core/src/hybrid.rs — non-test code
only (#[cfg(test)] items are exempt).
Remedy: return IntegrityError / RecoveryError (add a variant if none
fits); for infallible slice-to-array conversions prefer explicit
fold/indexing helpers over .try_into().expect(...).",
    },
    RuleInfo {
        id: "R2",
        severity: Severity::Error,
        summary: "no nondeterminism sources in simulation/model code",
        explanation: "\
The simulator's correctness argument is bit-identical replay: the same
seed must produce the same trace, cycle counts, and recovery decisions on
every run. thread_rng/SystemTime/Instant::now inject wall-clock or OS
entropy, and iterating a std HashMap (RandomState) makes tie-breaks
depend on hasher seeding.
Scope: crates/core/src/, crates/sim/src/, crates/workloads/src/,
crates/trace/src/ — non-test code only. The trace crate is in scope
because its artifacts carry the same byte-identity guarantee as the
simulation results they describe.
Remedy: use amnt_prng::Rng seeded from the run configuration; iterate
BTreeMap (or sort keys first) wherever iteration order can reach a
result, a statistic, or an eviction/prune decision.",
    },
    RuleInfo {
        id: "R3",
        severity: Severity::Error,
        summary: "persistent-metadata mutation without enqueue/fence in the same function",
        explanation: "\
Protocol code that mutates persistent metadata (raw NVM writes via
write_block_untimed / write_bytes_untimed / write_u64) must, in the same
function, either order the mutation through the write-queue timeline
(timeline.write / timeline.reset), snapshot it for rollback
(snapshot_before_lazy_update), or mark it durable (mark_persisted).
Otherwise a crash between the mutation and whatever later fences it can
strand metadata that recovery never learns about.
Scope: crates/core/src/protocol/, crates/core/src/controller.rs.
Remedy: pair the mutation with its durability action in one function, or
hoist both into the caller so the pairing is visible; if the pairing is
genuinely cross-function, baseline it with a comment in
lint-baseline.txt (and see ROADMAP: cross-function R3).",
    },
    RuleInfo {
        id: "R4",
        severity: Severity::Error,
        summary: "every lib.rs must carry #![forbid(unsafe_code)] and #![warn(missing_docs)]",
        explanation: "\
The workspace's safety story is 'no unsafe anywhere, docs everywhere';
both are crate-level attributes that silently stop applying when a new
crate forgets them.
Scope: every */src/lib.rs.
Remedy: add #![forbid(unsafe_code)] and #![warn(missing_docs)] at the
top of the crate root.",
    },
    RuleInfo {
        id: "R5",
        severity: Severity::Error,
        summary: "no truncating casts on cycle/timestamp variables",
        explanation: "\
Cycle counters are u64 and long simulations overflow 32 bits; a
truncating `as u32` / `as usize` on a variable named like a
cycle/tick/timestamp (or the conventional `t`) silently wraps and
corrupts stall accounting and wear statistics.
Scope: crates/core/src/timing.rs and crates/sim/src/.
Remedy: keep cycle arithmetic in u64; narrow only derived, provably
small quantities (and rename them so the intent is visible).",
    },
    RuleInfo {
        id: "R6",
        severity: Severity::Warn,
        summary: "to-do markers (TODO/FIXME) must reference an issue tag",
        explanation: "\
Unanchored TODOs rot. Each TODO/FIXME must cite an issue on the same
line, either as #<number> or as an AMNT-<number> tag, so it can be found
and retired.
Scope: all scanned files (comments included).
Remedy: write `TODO(#123): ...` or `FIXME(AMNT-7): ...`, or file the
issue and delete the comment.",
    },
    RuleInfo {
        id: "R7",
        severity: Severity::Error,
        summary: "no raw thread spawning outside the experiment executor",
        explanation: "\
All host parallelism flows through amnt_bench::exec, whose job pool
collects results in deterministic declaration order — that is what makes
`AMNT_JOBS` a pure speed knob and keeps results/*.json byte-identical at
any worker count. A stray thread::spawn / thread::scope / thread::Builder
elsewhere reintroduces scheduling-dependent ordering (and, in simulation
crates, breaks the single-threaded determinism argument outright).
Scope: all scanned non-test code except crates/bench/src/exec.rs.
Remedy: express the work as jobs and run them with
amnt_bench::exec::run_jobs or a bench Grid; if a new subsystem genuinely
needs its own threading model, extend exec instead of bypassing it.",
    },
    RuleInfo {
        id: "R8",
        severity: Severity::Error,
        summary: "no println!/eprintln!/dbg! in engine crates — observe through the trace layer",
        explanation: "\
The engine crates are instrumented through amnt-trace: counters,
histograms, spans, and epoch samples that serialise into deterministic
sidecar artifacts. A stray println!/eprintln!/dbg! in engine code
bypasses that layer — it interleaves nondeterministically under the
parallel executor, pollutes the experiment binaries' stdout tables, and
(for dbg!) ships debug scaffolding. Experiment/CLI binaries own their
stdout and are exempt.
Scope: crates/core/src/, crates/sim/src/, crates/cache/src/,
crates/nvm/src/ — non-test code only; src/bin/ directories are exempt.
Remedy: record the fact through the component's CompTrace / the
controller's Tracer (a counter or instant event), or return it as data;
if it is operator output, it belongs in a binary under src/bin/ or
crates/bench.",
    },
];

/// Looks up one rule's metadata by id (case-insensitive).
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id.eq_ignore_ascii_case(id))
}

/// Crash-critical scope for R1.
const R1_SCOPE: [&str; 4] = [
    "crates/core/src/protocol/",
    "crates/core/src/recovery.rs",
    "crates/core/src/controller.rs",
    "crates/core/src/hybrid.rs",
];

/// Determinism scope for R2. The trace crate is included: its sidecar
/// artifacts carry the same byte-identity guarantee as the results.
const R2_SCOPE: [&str; 4] =
    ["crates/core/src/", "crates/sim/src/", "crates/workloads/src/", "crates/trace/src/"];

/// Persist/fence-pairing scope for R3.
const R3_SCOPE: [&str; 2] = ["crates/core/src/protocol/", "crates/core/src/controller.rs"];

/// Engine-crate scope for R8 (print macros). `src/bin/` subtrees are
/// exempt — binaries own their stdout.
const R8_SCOPE: [&str; 4] =
    ["crates/core/src/", "crates/sim/src/", "crates/cache/src/", "crates/nvm/src/"];

/// Raw-NVM mutation entry points (R3).
const R3_MUTATIONS: [&str; 3] = [".write_block_untimed(", ".write_bytes_untimed(", ".write_u64("];

/// Durability/ordering actions that discharge an R3 mutation.
const R3_FENCES: [&str; 4] =
    ["timeline.write(", "timeline.reset(", "snapshot_before_lazy_update(", "mark_persisted("];

/// Lints one file's content under its repo-relative `path` (forward
/// slashes). The path drives rule scoping, so fixture tests can fabricate
/// paths like `crates/core/src/protocol/fake.rs`.
pub fn lint_source(path: &str, content: &str) -> Vec<Finding> {
    let masked = mask(content);
    let starts = line_starts(&masked);
    let test_ranges = cfg_test_ranges(&masked);
    let in_test = |line: usize| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);
    let mut findings = Vec::new();

    // R1: crash-path panics.
    if R1_SCOPE.iter().any(|s| path.starts_with(s)) {
        let patterns: [(&str, &str); 4] = [
            (".unwrap()", "`.unwrap()` on the crash path — return a typed error"),
            (".expect(", "`.expect(...)` on the crash path — return a typed error"),
            ("panic!", "`panic!` on the crash path — return a typed error"),
            ("unreachable!", "`unreachable!` on the crash path — return a typed error"),
        ];
        for (pat, msg) in patterns {
            for at in substr_offsets(&masked, pat) {
                let line = line_of(&starts, at);
                if !in_test(line) {
                    findings.push(mk(path, line, "R1", msg));
                }
            }
        }
    }

    // R2: nondeterminism sources.
    if R2_SCOPE.iter().any(|s| path.starts_with(s)) {
        let tokens: [(&str, &str); 3] = [
            ("thread_rng", "`thread_rng` — seed an amnt_prng::Rng from the run config instead"),
            ("SystemTime", "`SystemTime` — wall-clock time breaks deterministic replay"),
            ("Instant", "`Instant` — host timing breaks deterministic replay"),
        ];
        for (tok, msg) in tokens {
            for at in token_offsets(&masked, tok) {
                let line = line_of(&starts, at);
                if !in_test(line) {
                    findings.push(mk(path, line, "R2", msg));
                }
            }
        }
        for (ident, at) in hashmap_iterations(&masked) {
            let line = line_of(&starts, at);
            if !in_test(line) {
                findings.push(mk(
                    path,
                    line,
                    "R2",
                    &format!(
                        "iteration over std HashMap `{ident}` — order is hasher-seeded; use BTreeMap or sort"
                    ),
                ));
            }
        }
    }

    // R3: persist/fence pairing.
    if R3_SCOPE.iter().any(|s| path.starts_with(s)) {
        for span in fn_spans(&masked) {
            let body = &masked[span.start..span.end];
            let first_mutation =
                R3_MUTATIONS.iter().filter_map(|m| body.find(m)).min();
            if let Some(rel) = first_mutation {
                let line = line_of(&starts, span.start + rel);
                if in_test(line) {
                    continue;
                }
                let fenced = R3_FENCES.iter().any(|f| body.contains(f));
                if !fenced {
                    findings.push(mk(
                        path,
                        line,
                        "R3",
                        &format!(
                            "fn `{}` writes persistent metadata with no write-queue enqueue, snapshot, or persist marker in the same function",
                            span.name
                        ),
                    ));
                }
            }
        }
    }

    // R4: crate-root hygiene attributes.
    if path.ends_with("src/lib.rs") {
        for (attr, what) in [
            ("#![forbid(unsafe_code)]", "missing `#![forbid(unsafe_code)]` at crate root"),
            ("#![warn(missing_docs)]", "missing `#![warn(missing_docs)]` at crate root"),
        ] {
            if !masked.contains(attr) {
                findings.push(mk(path, 1, "R4", what));
            }
        }
    }

    // R5: truncating casts on cycle/timestamp variables.
    if path == "crates/core/src/timing.rs" || path.starts_with("crates/sim/src/") {
        for (ident, at) in truncating_time_casts(&masked) {
            let line = line_of(&starts, at);
            if !in_test(line) {
                findings.push(mk(
                    path,
                    line,
                    "R5",
                    &format!("truncating cast on cycle/timestamp variable `{ident}` — keep it u64"),
                ));
            }
        }
    }

    // R7: raw thread spawning outside the executor. Substring match: the
    // patterns carry their own `::` path context, so they catch both
    // `std::thread::spawn` and `thread::spawn` after a use-import.
    if path != "crates/bench/src/exec.rs" {
        let patterns: [(&str, &str); 3] = [
            ("thread::spawn", "`thread::spawn` outside the executor — use amnt_bench::exec::run_jobs"),
            ("thread::scope", "`thread::scope` outside the executor — use amnt_bench::exec::run_jobs"),
            ("thread::Builder", "`thread::Builder` outside the executor — use amnt_bench::exec::run_jobs"),
        ];
        for (pat, msg) in patterns {
            for at in substr_offsets(&masked, pat) {
                let line = line_of(&starts, at);
                if !in_test(line) {
                    findings.push(mk(path, line, "R7", msg));
                }
            }
        }
    }

    // R8: print macros in engine code. Token-bounded so `println` never
    // also matches inside `eprintln`; the `!` requirement keeps plain
    // identifiers (a local named `dbg`) out.
    if R8_SCOPE.iter().any(|s| path.starts_with(s)) && !path.contains("/bin/") {
        let macros: [(&str, &str); 3] = [
            ("println", "`println!` in engine code — record it through the trace layer"),
            ("eprintln", "`eprintln!` in engine code — record it through the trace layer"),
            ("dbg", "`dbg!` in engine code — record it through the trace layer"),
        ];
        for (name, msg) in macros {
            for at in token_offsets(&masked, name) {
                if !masked[at + name.len()..].starts_with('!') {
                    continue;
                }
                let line = line_of(&starts, at);
                if !in_test(line) {
                    findings.push(mk(path, line, "R8", msg));
                }
            }
        }
    }

    // R6: to-do marker anchoring — scans the comment mask, since the
    // markers live in comments (and markers quoted in string literals,
    // like this linter's own messages, must not match).
    for (idx, raw) in comments(content).lines().enumerate() {
        let has_marker = ["TODO", "FIXME"].iter().any(|m| {
            raw.match_indices(m).any(|(at, _)| {
                let b = raw.as_bytes();
                (at == 0 || !is_ident_byte(b[at - 1]))
                    && (at + m.len() >= b.len() || !is_ident_byte(b[at + m.len()]))
            })
        });
        if has_marker && !has_issue_tag(raw) {
            findings.push(mk(
                path,
                idx + 1,
                "R6",
                "TODO/FIXME without an issue tag — write TODO(#123) or TODO(AMNT-7)",
            ));
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    findings
}

fn mk(path: &str, line: usize, rule: &'static str, message: &str) -> Finding {
    let severity = rule_info(rule).map(|r| r.severity).unwrap_or(Severity::Error);
    Finding { path: path.to_string(), line, rule, severity, message: message.to_string() }
}

/// Plain substring occurrences (R1's patterns carry their own `.`/`!`
/// delimiters, so token boundaries are unnecessary).
fn substr_offsets(hay: &str, needle: &str) -> Vec<usize> {
    hay.match_indices(needle).map(|(at, _)| at).collect()
}

/// Identifiers declared (or bound) as `HashMap` in this file, paired with
/// each offset where they are iterated. A file-scope heuristic: an ident
/// declared `x: HashMap<..>`, `x: Option<HashMap<..>`, or
/// `x = HashMap::new()` is tracked, bare rebinds of a tracked ident
/// (`let p = &self.x;`, `let q = p;`) are followed to a fixed point, and
/// `x.iter()` / `x.keys()` / `x.values()` / `x.values_mut()` /
/// `x.drain(` / `x.into_iter()` / `for .. in &x` anywhere in the file is
/// flagged for any tracked name.
fn hashmap_iterations(masked: &str) -> Vec<(String, usize)> {
    let bytes = masked.as_bytes();
    let mut idents: Vec<String> = Vec::new();
    for (at, _) in masked.match_indices("HashMap") {
        // Walk back over `Option<`-style wrappers to the `:` or `=` that
        // binds this type/constructor to a name.
        let mut i = at;
        while i > 0 {
            let b = bytes[i - 1];
            if b == b':' || b == b'=' {
                // `::` is path syntax (HashMap::new() on the rhs of a
                // binding we already caught via `=`), not a declaration.
                if b == b':' && i >= 2 && bytes[i - 2] == b':' {
                    break;
                }
                let mut j = i - 1;
                while j > 0 && bytes[j - 1].is_ascii_whitespace() {
                    j -= 1;
                }
                let end = j;
                while j > 0 && is_ident_byte(bytes[j - 1]) {
                    j -= 1;
                }
                if j < end {
                    let name = masked[j..end].to_string();
                    if name != "mut" && !idents.contains(&name) {
                        idents.push(name);
                    }
                }
                break;
            }
            if b == b'<' || b == b' ' || b == b'&' || is_ident_byte(b) {
                i -= 1;
                continue;
            }
            break;
        }
    }
    // Alias tracking to a fixed point: `let p = &self.map;` (or `= map;`,
    // `= &mut map;`) rebinds a tracked map under a new name, so iterating
    // the alias is iterating the map. Only bare-rebind RHSes count — a
    // method call on the rhs (`map.len();`) yields something else entirely.
    let mut next = 0;
    while next < idents.len() {
        let ident = idents[next].clone();
        next += 1;
        for at in token_offsets(masked, &ident) {
            // The RHS must be the bare map: nothing but `;` after the name.
            if !masked[at + ident.len()..].trim_start().starts_with(';') {
                continue;
            }
            // Walk back over an optional `self.` owner and `&` / `&mut `.
            let mut i = at;
            if masked[..i].ends_with("self.") {
                i -= 5;
            }
            if masked[..i].ends_with("&mut ") {
                i -= 5;
            } else if masked[..i].ends_with('&') {
                i -= 1;
            }
            while i > 0 && bytes[i - 1].is_ascii_whitespace() {
                i -= 1;
            }
            if i == 0 || bytes[i - 1] != b'=' {
                continue;
            }
            i -= 1;
            // `==`, `!=`, `<=`, `+=`, … are comparisons or compound
            // assignments, not rebinds.
            let op = b"=!<>+-*/%^|&";
            if i > 0 && op.contains(&bytes[i - 1]) {
                continue;
            }
            while i > 0 && bytes[i - 1].is_ascii_whitespace() {
                i -= 1;
            }
            let end = i;
            while i > 0 && is_ident_byte(bytes[i - 1]) {
                i -= 1;
            }
            if i == end {
                continue;
            }
            let name = masked[i..end].to_string();
            if name != "mut" && !idents.contains(&name) {
                idents.push(name);
            }
        }
    }
    let mut hits = Vec::new();
    for ident in &idents {
        for at in token_offsets(masked, ident) {
            let rest = &masked[at + ident.len()..];
            let iterating = [
                ".iter()",
                ".iter_mut()",
                ".keys()",
                ".values()",
                ".values_mut()",
                ".drain(",
                ".into_iter()",
                ".into_keys()",
                ".into_values()",
            ]
            .iter()
            .any(|m| rest.starts_with(m));
            let for_loop = at >= 4 && masked[..at].ends_with("in &")
                || at >= 8 && masked[..at].ends_with("in &mut ");
            if iterating || for_loop {
                hits.push((ident.clone(), at));
            }
        }
    }
    hits
}

/// Occurrences of `<time-ish ident> as <narrow int>` in masked source.
fn truncating_time_casts(masked: &str) -> Vec<(String, usize)> {
    let bytes = masked.as_bytes();
    let mut hits = Vec::new();
    for at in token_offsets(masked, "as") {
        let rest = masked[at + 2..].trim_start();
        let narrow = ["u32", "usize", "u16", "u8", "i32", "i16", "i8"]
            .iter()
            .any(|t| rest.starts_with(t) && !rest[t.len()..].starts_with(|c: char| is_ident_byte(c as u8)));
        if !narrow {
            continue;
        }
        // Preceding token must be a plain identifier (skip `)`-terminated
        // expressions: we only claim confidence about named variables).
        let mut j = at;
        while j > 0 && bytes[j - 1] == b' ' {
            j -= 1;
        }
        let end = j;
        while j > 0 && is_ident_byte(bytes[j - 1]) {
            j -= 1;
        }
        if j == end {
            continue;
        }
        let ident = &masked[j..end];
        let last = ident.rsplit('_').next().unwrap_or(ident);
        let timeish = ident == "t"
            || ["cycle", "tick", "time"].iter().any(|k| ident.to_ascii_lowercase().contains(k))
            || last == "t";
        if timeish {
            hits.push((ident.to_string(), j));
        }
    }
    hits
}

/// Whether a to-do marker line carries an issue anchor: `#<digits>` or
/// `AMNT-<digits>`.
fn has_issue_tag(line: &str) -> bool {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'#' && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
            return true;
        }
    }
    for (at, _) in line.match_indices("AMNT-") {
        if bytes.get(at + 5).is_some_and(|c| c.is_ascii_digit()) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_table_is_consistent() {
        let ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec!["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"]);
        assert!(rule_info("r3").is_some());
        assert!(rule_info("r8").is_some());
        assert!(rule_info("R9").is_none());
    }

    #[test]
    fn finding_key_drops_the_line() {
        let f = mk("a/b.rs", 42, "R1", "msg");
        assert_eq!(f.key(), "a/b.rs · R1 · msg");
        assert_eq!(format!("{f}"), "a/b.rs:42 · R1 · error · msg");
    }

    #[test]
    fn issue_tags_recognised() {
        assert!(has_issue_tag("// TODO(#12): fix"));
        assert!(has_issue_tag("// FIXME AMNT-3 tighten"));
        assert!(!has_issue_tag("// TODO: someday"));
        assert!(!has_issue_tag("// TODO(AMNT-): someday"));
    }

    #[test]
    fn hashmap_iteration_heuristic() {
        let src = "let mut m: HashMap<u64, u8> = HashMap::new();\nfor (k, v) in &m {}\nm.insert(1, 2);\nlet n: BTreeMap<u64, u8> = BTreeMap::new();\nn.iter();\n";
        let hits = hashmap_iterations(&mask(src));
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, "m");
    }

    #[test]
    fn hashmap_alias_rebinding_is_followed() {
        // Direct alias, alias-of-alias, and a `self.`-owned field rebind
        // all inherit the HashMap taint; iterating any of them fires.
        let src = "struct S { map: HashMap<u64, u8> }\n\
                   let p = &self.map;\n\
                   let q = p;\n\
                   q.values();\n\
                   p.iter();\n";
        let hits = hashmap_iterations(&mask(src));
        let names: Vec<&str> = hits.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["p", "q"], "{hits:?}");
    }

    #[test]
    fn hashmap_alias_ignores_comparisons_and_calls() {
        // `==` is a comparison, not a rebind; a method-call RHS produces a
        // different value; neither may taint the LHS.
        let src = "let m: HashMap<u64, u8> = HashMap::new();\n\
                   let same = other == m;\n\
                   let n = m.len();\n\
                   same.iter();\n\
                   n.iter();\n";
        let hits = hashmap_iterations(&mask(src));
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn time_cast_heuristic() {
        let hits = truncating_time_casts("let a = total_cycles as u32; let b = bank_mask as u32; let c = t as usize; let d = t as u64;");
        let names: Vec<&str> = hits.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["total_cycles", "t"]);
    }
}
