//! Property-based tests for the PCM device model.

use amnt_nvm::{Nvm, NvmConfig};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// The device is a faithful byte store under arbitrary overlapping
    /// writes, modelled against a reference map.
    #[test]
    fn device_matches_reference_map(
        writes in prop::collection::vec(
            (0u64..1 << 16, prop::collection::vec(any::<u8>(), 1..200)),
            1..40
        )
    ) {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        let mut reference: HashMap<u64, u8> = HashMap::new();
        for (addr, data) in &writes {
            nvm.write_bytes(*addr, data).unwrap();
            for (i, &b) in data.iter().enumerate() {
                reference.insert(addr + i as u64, b);
            }
        }
        // Spot-check every written byte plus its neighbourhood.
        for (addr, data) in &writes {
            let mut buf = vec![0u8; data.len() + 2];
            let start = addr.saturating_sub(1);
            nvm.read_bytes(start, &mut buf).unwrap();
            for (i, got) in buf.iter().enumerate() {
                let a = start + i as u64;
                let want = reference.get(&a).copied().unwrap_or(0);
                prop_assert_eq!(*got, want, "byte at {:#x}", a);
            }
        }
    }

    /// Crashes never change media contents, regardless of history.
    #[test]
    fn crash_is_a_media_noop(
        writes in prop::collection::vec((0u64..1 << 14, any::<u8>()), 1..30),
        crashes in 1u8..4,
    ) {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        for (addr, byte) in &writes {
            nvm.write_bytes(*addr, &[*byte]).unwrap();
        }
        let mut snapshot = Vec::new();
        for (addr, _) in &writes {
            let mut b = [0u8];
            nvm.read_bytes(*addr, &mut b).unwrap();
            snapshot.push(b[0]);
        }
        for _ in 0..crashes {
            nvm.crash();
        }
        for ((addr, _), want) in writes.iter().zip(snapshot) {
            let mut b = [0u8];
            nvm.read_bytes(*addr, &mut b).unwrap();
            prop_assert_eq!(b[0], want);
        }
        prop_assert_eq!(nvm.generation(), crashes as u64);
    }

    /// Block reads and byte reads agree.
    #[test]
    fn block_and_byte_views_agree(block in 0u64..256, data in any::<[u8; 64]>()) {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.write_block(block * 64, &data).unwrap();
        let mut bytes = [0u8; 64];
        nvm.read_bytes(block * 64, &mut bytes).unwrap();
        prop_assert_eq!(bytes, nvm.read_block(block * 64).unwrap());
        prop_assert_eq!(bytes, data);
    }
}
