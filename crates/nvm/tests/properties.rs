//! Property-based tests for the PCM device model: seeded deterministic
//! loops over `amnt_prng` (replacing proptest, which the offline workspace
//! cannot depend on). Failures replay exactly — rerun the same test.

use amnt_nvm::{Nvm, NvmConfig};
use amnt_prng::Rng;
use std::collections::HashMap;

/// The device is a faithful byte store under arbitrary overlapping writes,
/// modelled against a reference map.
#[test]
fn device_matches_reference_map() {
    let mut rng = Rng::seed_from_u64(0x4E_0001);
    for _ in 0..48 {
        let mut writes = Vec::new();
        for _ in 0..rng.gen_range(1..40) {
            let addr = rng.gen_range(0..1 << 16);
            let mut data = vec![0u8; rng.gen_range_usize(1..200)];
            rng.fill_bytes(&mut data);
            writes.push((addr, data));
        }
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        let mut reference: HashMap<u64, u8> = HashMap::new();
        for (addr, data) in &writes {
            nvm.write_bytes(*addr, data).unwrap();
            for (i, &b) in data.iter().enumerate() {
                reference.insert(addr + i as u64, b);
            }
        }
        // Spot-check every written byte plus its neighbourhood.
        for (addr, data) in &writes {
            let mut buf = vec![0u8; data.len() + 2];
            let start = addr.saturating_sub(1);
            nvm.read_bytes(start, &mut buf).unwrap();
            for (i, got) in buf.iter().enumerate() {
                let a = start + i as u64;
                let want = reference.get(&a).copied().unwrap_or(0);
                assert_eq!(*got, want, "byte at {a:#x}");
            }
        }
    }
}

/// Crashes never change media contents, regardless of history.
#[test]
fn crash_is_a_media_noop() {
    let mut rng = Rng::seed_from_u64(0x4E_0002);
    for _ in 0..48 {
        let writes: Vec<(u64, u8)> = (0..rng.gen_range(1..30))
            .map(|_| (rng.gen_range(0..1 << 14), (rng.next_u64() & 0xff) as u8))
            .collect();
        let crashes = rng.gen_range(1..4) as u8;
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        for (addr, byte) in &writes {
            nvm.write_bytes(*addr, &[*byte]).unwrap();
        }
        let mut snapshot = Vec::new();
        for (addr, _) in &writes {
            let mut b = [0u8];
            nvm.read_bytes(*addr, &mut b).unwrap();
            snapshot.push(b[0]);
        }
        for _ in 0..crashes {
            nvm.crash();
        }
        for ((addr, _), want) in writes.iter().zip(snapshot) {
            let mut b = [0u8];
            nvm.read_bytes(*addr, &mut b).unwrap();
            assert_eq!(b[0], want);
        }
        assert_eq!(nvm.generation(), crashes as u64);
    }
}

/// Block reads and byte reads agree.
#[test]
fn block_and_byte_views_agree() {
    let mut rng = Rng::seed_from_u64(0x4E_0003);
    for _ in 0..128 {
        let block = rng.gen_range(0..256);
        let data: [u8; 64] = rng.gen_array();
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.write_block(block * 64, &data).unwrap();
        let mut bytes = [0u8; 64];
        nvm.read_bytes(block * 64, &mut bytes).unwrap();
        assert_eq!(bytes, nvm.read_block(block * 64).unwrap());
        assert_eq!(bytes, data);
    }
}
