//! Fault injection: power failures at device-write granularity.
//!
//! A [`FaultHook`] armed on an [`Nvm`](crate::Nvm) is consulted once per
//! *device-write ordinal* — every [`write_bytes`](crate::Nvm::write_bytes)
//! call, except that writes inside an atomic group (see
//! [`begin_atomic`](crate::Nvm::begin_atomic)) share one ordinal — and
//! decides whether the write applies, tears, or is the one the power failure
//! lands on. Once the hook cuts power, every subsequent access fails with
//! [`NvmError::PowerFailure`](crate::NvmError::PowerFailure) until
//! [`crate::Nvm::crash`] power-cycles the device; the fail-stop behaviour
//! guarantees a crashed operation cannot silently keep mutating the media.
//!
//! [`FaultPlan`] is the deterministic standard hook: crash after the *k*-th
//! device write (cleanly or tearing the in-flight line), and/or drop the
//! last *n* journaled writes — the write-pending-queue tail — at the crash
//! itself. Determinism contract: a `FaultPlan`'s decisions depend only on
//! the write ordinal, never on addresses, contents, or host state, so the
//! same workload replayed against the same plan crashes at the same point
//! with byte-identical media.

use std::fmt;

/// Protocol attribution of one device write, for crash-point
/// classification. Most device writes are issued by the persistence
/// protocol in its mandated order; metadata-cache eviction writebacks are
/// not — they persist tree nodes whenever cache pressure dictates, out of
/// protocol order, which is exactly the hazard lazy (leaf-style)
/// persistence claims to bound. The controller tags each write with its
/// class (see [`crate::Nvm::set_write_class`]) so sweeps can enumerate
/// eviction-writeback crash points as their own class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WriteClass {
    /// A write issued by the persistence protocol in protocol order.
    #[default]
    Protocol,
    /// A metadata-cache eviction writeback (out of protocol order).
    Eviction,
}

/// Which half of a 64-byte line survives a torn write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornHalf {
    /// The first 32 bytes of each touched line persist; the rest keeps its
    /// previous contents.
    First,
    /// The last 32 bytes of each touched line persist.
    Last,
}

/// What the device should do with one device write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Apply the write normally.
    Apply,
    /// Apply only the surviving half of each touched 64-byte line, then cut
    /// power (the write itself reports a power failure).
    Torn(TornHalf),
    /// Cut power before the write applies; nothing persists.
    PowerOff,
}

/// Faults applied at crash time (power actually failing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrashFaults {
    /// How many journaled device writes — the write-pending-queue tail — to
    /// undo, newest first. `0` models a healthy ADR domain.
    pub drop_wpq_tail: usize,
}

/// A per-write fault decision source, armed on an [`Nvm`](crate::Nvm).
///
/// `seq` is the zero-based device-write ordinal since arming (an atomic
/// group consumes a single ordinal). Implementations must be deterministic
/// functions of their own state and `seq`/`addr`/`len`.
pub trait FaultHook: fmt::Debug + Send {
    /// Decides the fate of the write with ordinal `seq` at `addr`.
    fn on_write(&mut self, seq: u64, addr: u64, len: usize) -> FaultAction;

    /// Faults to apply when the device actually crashes.
    fn crash_faults(&mut self) -> CrashFaults {
        CrashFaults::default()
    }

    /// Consulted by [`crate::Nvm::crash`] after [`FaultHook::crash_faults`]:
    /// return `true` to stay armed across the power cycle. The device-write
    /// ordinal counter restarts at zero on every crash, so a hook that
    /// survives addresses the *next phase's* writes — typically the recovery
    /// procedure — in a fresh coordinate system (the recovery-phase ordinal
    /// domain). The default is `false`: single-phase plans are consumed at
    /// the crash, exactly as before.
    fn rearm_after_crash(&mut self) -> bool {
        false
    }

    /// Clones the hook behind its box (keeps `Nvm: Clone`).
    fn box_clone(&self) -> Box<dyn FaultHook>;
}

impl Clone for Box<dyn FaultHook> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// How the write at the crash ordinal is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashWriteMode {
    /// The in-flight write is wholly lost.
    Clean,
    /// The in-flight write tears: the given half of each touched line lands.
    Torn(TornHalf),
}

/// The standard deterministic fault plan (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Crash ordinal: the first `crash_after` device writes apply, then the
    /// next one is where power fails (per `mode`). `None` never cuts power —
    /// useful for counting ordinals and for pure WPQ-tail-drop crashes.
    pub crash_after: Option<u64>,
    /// Fate of the write at the crash ordinal.
    pub mode: CrashWriteMode,
    /// WPQ tail to drop when [`crate::Nvm::crash`] runs.
    pub drop_wpq_tail: usize,
}

impl FaultPlan {
    /// Never faults; just counts device-write ordinals.
    pub fn count_only() -> Self {
        FaultPlan { crash_after: None, mode: CrashWriteMode::Clean, drop_wpq_tail: 0 }
    }

    /// Power fails cleanly after `k` device writes (the `k+1`-th is lost).
    pub fn crash_after(k: u64) -> Self {
        FaultPlan { crash_after: Some(k), mode: CrashWriteMode::Clean, drop_wpq_tail: 0 }
    }

    /// Power fails after `k` device writes, tearing the `k+1`-th so only
    /// `half` of each touched 64-byte line lands.
    pub fn torn_after(k: u64, half: TornHalf) -> Self {
        FaultPlan { crash_after: Some(k), mode: CrashWriteMode::Torn(half), drop_wpq_tail: 0 }
    }

    /// Never cuts power mid-write, but drops the last `n` journaled writes
    /// when the crash comes (an ADR/flush failure).
    pub fn drop_tail(n: usize) -> Self {
        FaultPlan { crash_after: None, mode: CrashWriteMode::Clean, drop_wpq_tail: n }
    }
}

impl FaultHook for FaultPlan {
    fn on_write(&mut self, seq: u64, _addr: u64, _len: usize) -> FaultAction {
        match self.crash_after {
            Some(k) if seq > k => FaultAction::PowerOff,
            Some(k) if seq == k => match self.mode {
                CrashWriteMode::Clean => FaultAction::PowerOff,
                CrashWriteMode::Torn(half) => FaultAction::Torn(half),
            },
            _ => FaultAction::Apply,
        }
    }

    fn crash_faults(&mut self) -> CrashFaults {
        CrashFaults { drop_wpq_tail: self.drop_wpq_tail }
    }

    fn box_clone(&self) -> Box<dyn FaultHook> {
        Box::new(*self)
    }
}

/// A fault plan that survives power cycles: one [`FaultPlan`] per phase.
///
/// Phase 0 governs the mutation path. Each [`crate::Nvm::crash`] advances to
/// the next phase with the write-ordinal counter restarted at zero, so phase
/// 1 addresses the *recovery procedure's* device writes — the
/// recovery-phase ordinal domain — phase 2 the re-recovery after that, and
/// so on. After the last phase the hook disarms at the next crash, like a
/// plain [`FaultPlan`].
///
/// Determinism contract: every phase is a [`FaultPlan`], so the whole
/// multi-cycle schedule is a pure function of per-phase write ordinals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhasedPlan {
    phases: Vec<FaultPlan>,
    current: usize,
}

impl PhasedPlan {
    /// A plan with one [`FaultPlan`] per power cycle, starting with the
    /// mutation phase. An empty list never faults.
    pub fn new(phases: Vec<FaultPlan>) -> Self {
        PhasedPlan { phases, current: 0 }
    }

    /// The nested-sweep shape: fault the mutation path with `mutation`,
    /// then fault the recovery that follows with `recovery`.
    pub fn two_phase(mutation: FaultPlan, recovery: FaultPlan) -> Self {
        Self::new(vec![mutation, recovery])
    }

    /// The phase currently armed (`None` once every phase is spent).
    pub fn current_phase(&self) -> Option<&FaultPlan> {
        self.phases.get(self.current)
    }
}

impl FaultHook for PhasedPlan {
    fn on_write(&mut self, seq: u64, addr: u64, len: usize) -> FaultAction {
        match self.phases.get_mut(self.current) {
            Some(p) => p.on_write(seq, addr, len),
            None => FaultAction::Apply,
        }
    }

    fn crash_faults(&mut self) -> CrashFaults {
        match self.phases.get_mut(self.current) {
            Some(p) => p.crash_faults(),
            None => CrashFaults::default(),
        }
    }

    fn rearm_after_crash(&mut self) -> bool {
        self.current += 1;
        self.current < self.phases.len()
    }

    fn box_clone(&self) -> Box<dyn FaultHook> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_a_pure_function_of_the_ordinal() {
        let mut p = FaultPlan::crash_after(2);
        assert_eq!(p.on_write(0, 0x40, 64), FaultAction::Apply);
        assert_eq!(p.on_write(1, 0x999, 8), FaultAction::Apply);
        assert_eq!(p.on_write(2, 0, 64), FaultAction::PowerOff);
        assert_eq!(p.on_write(3, 0, 64), FaultAction::PowerOff);
    }

    #[test]
    fn torn_plan_tears_exactly_the_crash_ordinal() {
        let mut p = FaultPlan::torn_after(1, TornHalf::Last);
        assert_eq!(p.on_write(0, 0, 64), FaultAction::Apply);
        assert_eq!(p.on_write(1, 0, 64), FaultAction::Torn(TornHalf::Last));
    }

    #[test]
    fn count_only_never_faults() {
        let mut p = FaultPlan::count_only();
        for seq in 0..1000 {
            assert_eq!(p.on_write(seq, seq * 64, 64), FaultAction::Apply);
        }
        assert_eq!(p.crash_faults(), CrashFaults::default());
    }

    #[test]
    fn drop_tail_reports_its_crash_faults() {
        let mut p = FaultPlan::drop_tail(3);
        assert_eq!(p.on_write(0, 0, 64), FaultAction::Apply);
        assert_eq!(p.crash_faults(), CrashFaults { drop_wpq_tail: 3 });
    }

    #[test]
    fn single_phase_plans_do_not_rearm() {
        let mut p = FaultPlan::crash_after(0);
        assert!(!p.rearm_after_crash());
    }

    #[test]
    fn phased_plan_advances_one_phase_per_crash() {
        let mut p =
            PhasedPlan::two_phase(FaultPlan::crash_after(1), FaultPlan::crash_after(0));
        // Phase 0: the mutation-path plan.
        assert_eq!(p.on_write(0, 0, 64), FaultAction::Apply);
        assert_eq!(p.on_write(1, 0, 64), FaultAction::PowerOff);
        // Crash: the recovery phase arms, in a fresh ordinal domain.
        assert!(p.rearm_after_crash());
        assert_eq!(p.current_phase(), Some(&FaultPlan::crash_after(0)));
        assert_eq!(p.on_write(0, 0, 64), FaultAction::PowerOff);
        // Second crash: phases exhausted, the hook disarms.
        assert!(!p.rearm_after_crash());
        assert_eq!(p.current_phase(), None);
        assert_eq!(p.on_write(0, 0, 64), FaultAction::Apply);
    }

    #[test]
    fn phased_plan_crash_faults_come_from_the_current_phase() {
        let mut p =
            PhasedPlan::two_phase(FaultPlan::drop_tail(2), FaultPlan::count_only());
        assert_eq!(p.crash_faults(), CrashFaults { drop_wpq_tail: 2 });
        assert!(p.rearm_after_crash());
        assert_eq!(p.crash_faults(), CrashFaults::default());
    }
}
