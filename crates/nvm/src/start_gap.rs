//! Start-Gap wear levelling (Qureshi et al., MICRO 2009).
//!
//! PCM lines endure ~10⁷–10⁸ writes; a hot line (say, a hammered counter
//! block) would die in minutes without wear levelling. Start-Gap is the
//! classic low-cost scheme: provision one spare line per region, keep a
//! *gap* (unused line) that walks backwards one slot every `gap_interval`
//! writes, and derive the logical→physical mapping from just two registers
//! (`start`, `gap`) — no table.
//!
//! [`StartGap`] wraps a region of an [`Nvm`](crate::Nvm) device and exposes
//! line-granular reads/writes under levelled addressing. It is a substrate
//! component: a secure-memory controller would sit *above* it (encrypting
//! and MAC'ing logical lines), letting every region of security metadata
//! spread its wear.

use crate::{Nvm, NvmError, BLOCK_SIZE};

/// A Start-Gap wear-levelled window of `lines` logical 64-byte lines, backed
/// by `lines + 1` physical lines at `base` on the device.
///
/// # Examples
///
/// ```
/// use amnt_nvm::{Nvm, NvmConfig, StartGap};
///
/// let mut nvm = Nvm::new(NvmConfig::gib(1));
/// let mut region = StartGap::new(0x10000, 64, 8);
/// for i in 0..100u8 {
///     region.write_line(&mut nvm, 5, &[i; 64])?;     // hammer one line
/// }
/// assert_eq!(region.read_line(&mut nvm, 5)?, [99u8; 64]);
/// # Ok::<(), amnt_nvm::NvmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StartGap {
    base: u64,
    lines: u64,
    /// Rotation of the whole mapping (increments when the gap wraps).
    start: u64,
    /// Physical slot currently left empty.
    gap: u64,
    /// Writes between gap movements.
    gap_interval: u32,
    writes_since_move: u32,
    /// Total gap movements (diagnostics).
    moves: u64,
}

impl StartGap {
    /// Creates a levelled window of `lines` logical lines over the physical
    /// range `[base, base + (lines + 1) * 64)`.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero, `gap_interval` is zero, or `base` is not
    /// 64-byte aligned.
    pub fn new(base: u64, lines: u64, gap_interval: u32) -> Self {
        assert!(lines > 0, "a levelled region needs at least one line");
        assert!(gap_interval > 0, "the gap must move");
        assert_eq!(base % BLOCK_SIZE as u64, 0, "base must be line-aligned");
        StartGap {
            base,
            lines,
            start: 0,
            gap: lines, // the spare slot starts at the end
            gap_interval,
            writes_since_move: 0,
            moves: 0,
        }
    }

    /// Number of logical lines.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Gap movements so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Logical line → physical slot, per the Start-Gap mapping (Qureshi et
    /// al., Fig. 4): rotate by `start` modulo N, then skip the gap slot.
    fn slot_of(&self, line: u64) -> u64 {
        debug_assert!(line < self.lines);
        let rotated = (line + self.start) % self.lines;
        if rotated >= self.gap {
            rotated + 1
        } else {
            rotated
        }
    }

    fn slot_addr(&self, slot: u64) -> u64 {
        self.base + slot * BLOCK_SIZE as u64
    }

    /// The current physical address of logical `line` (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn physical_addr(&self, line: u64) -> u64 {
        assert!(line < self.lines, "line {line} out of range");
        self.slot_addr(self.slot_of(line))
    }

    /// Reads logical `line`.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn read_line(&self, nvm: &mut Nvm, line: u64) -> Result<[u8; BLOCK_SIZE], NvmError> {
        assert!(line < self.lines, "line {line} out of range");
        nvm.read_block(self.slot_addr(self.slot_of(line)))
    }

    /// Writes logical `line`, moving the gap one slot backwards every
    /// `gap_interval` writes (one extra line copy per movement).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn write_line(
        &mut self,
        nvm: &mut Nvm,
        line: u64,
        data: &[u8; BLOCK_SIZE],
    ) -> Result<(), NvmError> {
        assert!(line < self.lines, "line {line} out of range");
        nvm.write_block(self.slot_addr(self.slot_of(line)), data)?;
        self.writes_since_move += 1;
        if self.writes_since_move >= self.gap_interval {
            self.writes_since_move = 0;
            self.move_gap(nvm)?;
        }
        Ok(())
    }

    /// Moves the gap one slot backwards (modulo): the line just above the
    /// gap slides into the gap's slot. When the gap wraps from slot 0 back
    /// to the top, the whole mapping has rotated by one (`start`
    /// increments), keeping the two-register mapping consistent with the
    /// copies performed.
    fn move_gap(&mut self, nvm: &mut Nvm) -> Result<(), NvmError> {
        self.moves += 1;
        let from_slot = if self.gap == 0 { self.lines } else { self.gap - 1 };
        let data = nvm.read_block(self.slot_addr(from_slot))?;
        nvm.write_block(self.slot_addr(self.gap), &data)?;
        self.gap = from_slot;
        if self.gap == self.lines {
            // The gap completed a full walk: the mapping rotated by one.
            self.start = (self.start + 1) % self.lines;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NvmConfig;

    fn setup(lines: u64, interval: u32) -> (StartGap, Nvm) {
        (StartGap::new(0x8000, lines, interval), Nvm::new(NvmConfig::gib(1)))
    }

    #[test]
    fn roundtrip_across_gap_movements() {
        let (mut sg, mut nvm) = setup(16, 3);
        for line in 0..16u64 {
            sg.write_line(&mut nvm, line, &[line as u8; 64]).unwrap();
        }
        assert!(sg.moves() >= 5);
        for line in 0..16u64 {
            assert_eq!(sg.read_line(&mut nvm, line).unwrap(), [line as u8; 64]);
        }
    }

    #[test]
    fn data_survives_many_full_rotations() {
        let (mut sg, mut nvm) = setup(8, 1); // gap moves every write
        for line in 0..8u64 {
            sg.write_line(&mut nvm, line, &[0x10 + line as u8; 64]).unwrap();
        }
        // Hammer line 0 through several full rotations of the mapping.
        for round in 0..200u64 {
            sg.write_line(&mut nvm, 0, &[round as u8; 64]).unwrap();
            for line in 1..8u64 {
                assert_eq!(
                    sg.read_line(&mut nvm, line).unwrap(),
                    [0x10 + line as u8; 64],
                    "line {line} corrupted at round {round} (gap bookkeeping bug)"
                );
            }
        }
        assert_eq!(sg.read_line(&mut nvm, 0).unwrap(), [199u8; 64]);
    }

    #[test]
    fn hot_line_wear_spreads_over_physical_slots() {
        let (mut sg, mut nvm) = setup(16, 4);
        let mut distinct = std::collections::HashSet::new();
        for i in 0..800u64 {
            distinct.insert(sg.physical_addr(3));
            sg.write_line(&mut nvm, 3, &[i as u8; 64]).unwrap();
        }
        // 800 writes / 4 per move = 200 gap moves over 17 slots (~11 full
        // rotations): the hot logical line visited many physical homes.
        assert!(
            distinct.len() >= 8,
            "hot line stayed on {} physical slots",
            distinct.len()
        );
    }

    #[test]
    fn mapping_is_a_bijection_at_every_step() {
        let (mut sg, mut nvm) = setup(12, 1);
        for step in 0..60u64 {
            let mut seen = std::collections::HashSet::new();
            for line in 0..12u64 {
                let slot = sg.physical_addr(line);
                assert!(seen.insert(slot), "collision at step {step}");
            }
            sg.write_line(&mut nvm, step % 12, &[step as u8; 64]).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_line_panics() {
        let (sg, mut nvm) = setup(4, 1);
        let _ = sg.read_line(&mut nvm, 4);
    }
}
