//! # amnt-nvm
//!
//! A byte-addressable storage-class-memory (SCM/PCM) device model.
//!
//! The device is *functional* — it stores real bytes (sparsely, 4 KiB frames
//! allocated on first touch) — and *timed* — it knows its read/write
//! latencies (Table 1 of the paper: 305 ns read, 391 ns write for DDR-based
//! PCM) and counts traffic. Crucially it is *non-volatile*: [`Nvm::crash`]
//! leaves the media intact and only bumps a generation counter; volatility
//! lives in the caches and controller registers built on top.
//!
//! ## Example
//!
//! ```
//! use amnt_nvm::{Nvm, NvmConfig};
//!
//! let mut nvm = Nvm::new(NvmConfig::gib(1));
//! nvm.write_block(0x40, &[7u8; 64])?;
//! nvm.crash(); // power failure: media survives
//! assert_eq!(nvm.read_block(0x40)?, [7u8; 64]);
//! # Ok::<(), amnt_nvm::NvmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::ops::Bound;

mod fault;
mod start_gap;
pub use fault::{
    CrashFaults, CrashWriteMode, FaultAction, FaultHook, FaultPlan, PhasedPlan, TornHalf,
    WriteClass,
};
pub use start_gap::StartGap;

/// Size of a memory block (cache line) in bytes.
pub const BLOCK_SIZE: usize = 64;
/// Size of a backing frame in bytes — the on-demand materialization
/// granularity. Sparse consumers (the O(touched) recovery paths) partition
/// the address space at this granule via [`Nvm::touched_frames`].
pub const FRAME_SIZE: usize = 4096;

/// Device geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvmConfig {
    /// Device capacity in bytes.
    pub capacity_bytes: u64,
    /// Media read latency in nanoseconds (Table 1: 305 ns).
    pub read_ns: f64,
    /// Media write latency in nanoseconds (Table 1: 391 ns).
    pub write_ns: f64,
    /// Core clock used to convert latencies to cycles.
    pub clock_ghz: f64,
}

impl NvmConfig {
    /// A device of `gib` GiB with the paper's PCM timing at a 2 GHz core clock.
    pub fn gib(gib: u64) -> Self {
        NvmConfig {
            capacity_bytes: gib * 1024 * 1024 * 1024,
            read_ns: 305.0,
            write_ns: 391.0,
            clock_ghz: 2.0,
        }
    }

    /// The paper's default 8 GiB PCM device (Table 1).
    pub fn paper_default() -> Self {
        Self::gib(8)
    }

    /// Media read latency in core cycles.
    pub fn read_cycles(&self) -> u64 {
        (self.read_ns * self.clock_ghz).round() as u64
    }

    /// Media write latency in core cycles.
    pub fn write_cycles(&self) -> u64 {
        (self.write_ns * self.clock_ghz).round() as u64
    }
}

impl Default for NvmConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Errors returned by device accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmError {
    /// The access falls (partly) outside the device.
    OutOfBounds {
        /// Requested address.
        addr: u64,
        /// Requested length.
        len: usize,
        /// Device capacity.
        capacity: u64,
    },
    /// A block access was not 64-byte aligned.
    Misaligned {
        /// Requested address.
        addr: u64,
    },
    /// Power failed at (or before) this access: an armed [`FaultHook`] cut
    /// power, and the device fail-stops until [`Nvm::crash`] power-cycles
    /// it. Surfacing the failure on every access guarantees an interrupted
    /// operation cannot silently keep mutating the media.
    PowerFailure {
        /// Address of the access the failure surfaced on.
        addr: u64,
    },
}

impl fmt::Display for NvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmError::OutOfBounds { addr, len, capacity } => write!(
                f,
                "access of {len} bytes at {addr:#x} exceeds device capacity {capacity:#x}"
            ),
            NvmError::Misaligned { addr } => {
                write!(f, "block access at {addr:#x} is not 64-byte aligned")
            }
            NvmError::PowerFailure { addr } => {
                write!(f, "power failed during the access at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for NvmError {}

/// Traffic counters for the device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NvmStats {
    /// Block/byte-range reads issued.
    pub reads: u64,
    /// Block/byte-range writes issued.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

/// The SCM device.
///
/// See the crate-level docs for the modelling contract and an example.
#[derive(Debug, Clone, Default)]
pub struct Nvm {
    config: NvmConfig,
    /// Backing frames keyed by frame index (`addr / FRAME_SIZE`). Ordered so
    /// touched-frame enumeration is deterministic regardless of touch order.
    frames: BTreeMap<u64, Box<[u8; FRAME_SIZE]>>,
    stats: NvmStats,
    /// Bumped on every crash; lets tests assert they really crossed one.
    generation: u64,
    /// Armed fault hook, consulted once per device-write ordinal.
    fault: Option<Box<dyn FaultHook>>,
    /// Device-write ordinals consumed since the hook was armed.
    fault_seq: u64,
    /// Class the controller declared for writes currently being issued
    /// (protocol-ordered vs eviction writeback); see [`Nvm::set_write_class`].
    write_class: WriteClass,
    /// Ordinals (current domain) consumed by eviction-class writes, recorded
    /// while a hook is armed so sweeps can enumerate them as their own
    /// crash-point class.
    evict_seqs: Vec<u64>,
    /// WPQ lane this device's write-pending queue drains on. Every device
    /// owns exactly one lane, so its write ordinals form a per-lane domain;
    /// sharded controllers stamp one lane per shard so strikes, wear and
    /// crash points are attributable to the shard that issued them.
    lane: u32,
    /// Set once an armed hook cuts power: every access fails until
    /// [`Nvm::crash`] power-cycles the device.
    powered_off: bool,
    /// Nesting depth of [`Nvm::begin_atomic`] groups.
    group_depth: u32,
    /// Whether the current atomic group already consumed its ordinal.
    group_charged: bool,
    /// Pre-images journaled for the currently open atomic group.
    open_group: Vec<(u64, Vec<u8>)>,
    /// Bounded undo journal of recent writes (newest at the back), one entry
    /// per device-write ordinal — the modelled write-pending queue. Only
    /// populated while a fault hook is armed.
    journal: VecDeque<Vec<(u64, Vec<u8>)>>,
    /// Whether the last crash interrupted in-flight work (a power failure
    /// surfaced mid-write, or the WPQ tail was dropped) — the NVDIMM-style
    /// "dirty shutdown" flag recovery consults.
    dirty_shutdown: bool,
    /// Trace-layer sink (disabled by default): device traffic counters,
    /// WPQ-journal enqueue/drain counters, and fault-strike records. Counts
    /// independently of [`NvmStats`] so the tracer can reset it without
    /// disturbing artifact-visible statistics.
    trace: amnt_trace::CompTrace,
}

/// Modelled write-pending-queue depth: the undo journal keeps at most this
/// many device-write ordinals; older writes have drained to the media.
const JOURNAL_DEPTH: usize = 128;

impl Nvm {
    /// Creates a device; all bytes read as zero until written.
    pub fn new(config: NvmConfig) -> Self {
        Nvm {
            config,
            frames: BTreeMap::new(),
            stats: NvmStats::default(),
            generation: 0,
            fault: None,
            fault_seq: 0,
            write_class: WriteClass::Protocol,
            evict_seqs: Vec::new(),
            lane: 0,
            powered_off: false,
            group_depth: 0,
            group_charged: false,
            open_group: Vec::new(),
            journal: VecDeque::new(),
            dirty_shutdown: false,
            trace: amnt_trace::CompTrace::default(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> NvmConfig {
        self.config
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &NvmStats {
        &self.stats
    }

    /// Resets traffic statistics (e.g. at a region-of-interest boundary).
    pub fn reset_stats(&mut self) {
        self.stats = NvmStats::default();
    }

    /// How many crashes this device has survived.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Power failure: media persists, generation bumps.
    ///
    /// Volatile state (caches, on-chip volatile registers) is owned by the
    /// layers above and must be cleared by them.
    ///
    /// If a [`FaultHook`] is armed, its [`FaultHook::crash_faults`] may drop
    /// the journaled write-pending-queue tail (newest writes undone first),
    /// and the device then power-cycles — accesses work again. The hook is
    /// normally consumed here, but a multi-phase hook (see
    /// [`fault::PhasedPlan`]) may elect to stay armed via
    /// [`FaultHook::rearm_after_crash`]: it then governs the next power
    /// cycle's writes with the ordinal counter restarted at zero, which is
    /// how the recovery procedure itself gets faulted. The dirty-shutdown
    /// flag records whether this crash interrupted in-flight work (see
    /// [`Nvm::dirty_shutdown`]).
    pub fn crash(&mut self) {
        let mut dropped = 0usize;
        let mut rearmed: Option<Box<dyn FaultHook>> = None;
        if let Some(mut hook) = self.fault.take() {
            let faults = hook.crash_faults();
            // A torn or rejected write already landed its partial effects;
            // the open-group journal (if an atomic group was cut short) and
            // the committed journal both hold undo candidates. The open
            // group is newest, so it is undone first.
            if faults.drop_wpq_tail > 0 && !self.open_group.is_empty() {
                let group = std::mem::take(&mut self.open_group);
                self.record_wpq_drop(&group, dropped as u64);
                self.undo_group(group);
                dropped += 1;
            }
            while dropped < faults.drop_wpq_tail {
                match self.journal.pop_back() {
                    Some(group) => {
                        self.record_wpq_drop(&group, dropped as u64);
                        self.undo_group(group);
                        dropped += 1;
                    }
                    None => break,
                }
            }
            if hook.rearm_after_crash() {
                rearmed = Some(hook);
            }
        }
        self.dirty_shutdown = self.powered_off || dropped > 0;
        self.journal.clear();
        self.open_group.clear();
        self.group_depth = 0;
        self.group_charged = false;
        self.powered_off = false;
        self.fault = rearmed;
        self.fault_seq = 0;
        self.write_class = WriteClass::Protocol;
        self.evict_seqs.clear();
        self.generation += 1;
    }

    /// Undoes one journaled ordinal: restores pre-images newest-first.
    fn undo_group(&mut self, group: Vec<(u64, Vec<u8>)>) {
        for (addr, pre) in group.into_iter().rev() {
            self.poke(addr, &pre);
        }
    }

    /// Whether the last [`Nvm::crash`] interrupted in-flight work: a power
    /// failure surfaced mid-write, or part of the write-pending queue was
    /// lost. Mirrors the NVDIMM dirty-shutdown count; recovery uses it to
    /// decide whether the ordered-write-through invariants may have been
    /// violated mid-operation.
    pub fn dirty_shutdown(&self) -> bool {
        self.dirty_shutdown
    }

    // ------------------------------------------------------------------
    // Fault hook plumbing
    // ------------------------------------------------------------------

    /// Arms `hook`: from now on every device-write ordinal consults it and
    /// recent writes are journaled for WPQ-tail drops. Resets the ordinal
    /// counter. The hook stays armed until [`Nvm::crash`] consumes it (or
    /// [`Nvm::disarm_fault_hook`] removes it).
    pub fn arm_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.fault = Some(hook);
        self.fault_seq = 0;
        self.write_class = WriteClass::Protocol;
        self.evict_seqs.clear();
        self.powered_off = false;
    }

    /// Removes the armed hook, if any, without a power cycle.
    pub fn disarm_fault_hook(&mut self) -> Option<Box<dyn FaultHook>> {
        let hook = self.fault.take();
        self.powered_off = false;
        self.journal.clear();
        self.open_group.clear();
        self.group_charged = false;
        hook
    }

    /// Whether a fault hook is currently armed.
    pub fn fault_armed(&self) -> bool {
        self.fault.is_some()
    }

    /// Whether an armed hook has cut power (accesses currently fail).
    pub fn powered_off(&self) -> bool {
        self.powered_off
    }

    /// Device-write ordinals consumed since the hook was armed (an atomic
    /// group counts once). The crash-point coordinate system of
    /// [`FaultPlan`]. Restarts at zero on every [`Nvm::crash`], so after a
    /// rearming crash this counts the *recovery-phase* domain. Ordinals are
    /// scoped to this device's WPQ [`Nvm::lane`]: two devices on different
    /// lanes consume ordinals independently.
    pub fn device_write_ordinals(&self) -> u64 {
        self.fault_seq
    }

    /// The WPQ lane this device drains on (default `0`). A sharded
    /// controller assigns one lane per shard, making every write ordinal,
    /// eviction ordinal and fault strike attributable to its shard.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Assigns this device's WPQ lane. Purely an attribution tag: it never
    /// changes device behaviour, timing or fault decisions.
    pub fn set_lane(&mut self, lane: u32) {
        self.lane = lane;
    }

    /// Declares the class of the writes the controller is about to issue
    /// (sticky until changed; reset to [`WriteClass::Protocol`] on arm and
    /// on crash). Purely observational: fault decisions never depend on it.
    pub fn set_write_class(&mut self, class: WriteClass) {
        self.write_class = class;
    }

    /// Ordinals in the current domain consumed by [`WriteClass::Eviction`]
    /// writes, in consumption order. Empty unless a hook is armed.
    pub fn eviction_write_ordinals(&self) -> &[u64] {
        &self.evict_seqs
    }

    /// Byte-exact image of the persisted media: every backed frame's base
    /// offset and contents, sorted, with untouched (all-zero) frames
    /// normalised away — two devices with equal images serve identical
    /// bytes at every address. The idempotence sweeps compare post-recovery
    /// media states with this.
    pub fn media_image(&self) -> Vec<(u64, Vec<u8>)> {
        // BTreeMap iteration is already sorted by frame index.
        self.frames
            .iter()
            .filter(|(_, frame)| frame.iter().any(|&b| b != 0))
            .map(|(base, frame)| (*base, frame.to_vec()))
            .collect()
    }

    /// Deterministic enumeration of every touched (backed) frame: ordered
    /// base byte addresses, ascending. A frame is *touched* once any byte in
    /// it has ever been written (even with zeros); untouched frames read as
    /// zero and never appear here. This is the contract the O(touched)
    /// recovery paths scan instead of the address space.
    pub fn touched_frames(&self) -> impl Iterator<Item = u64> + '_ {
        self.frames.keys().map(|index| index * FRAME_SIZE as u64)
    }

    /// [`Nvm::touched_frames`] restricted to base addresses in
    /// `[start, end)`. `start` need not be frame-aligned: a frame whose base
    /// lies below `start` but which overlaps it is included, since bytes in
    /// `[start, end)` may live there.
    pub fn touched_frames_in(&self, start: u64, end: u64) -> impl Iterator<Item = u64> + '_ {
        let first = start / FRAME_SIZE as u64;
        let last = end.div_ceil(FRAME_SIZE as u64);
        self.frames
            .range((Bound::Included(first), Bound::Excluded(last)))
            .map(|(index, _)| index * FRAME_SIZE as u64)
    }

    /// Whether the frame containing `addr` is backed (has ever been written).
    pub fn frame_touched(&self, addr: u64) -> bool {
        self.frames.contains_key(&(addr / FRAME_SIZE as u64))
    }

    /// Opens an atomic write group: until the matching [`Nvm::end_atomic`],
    /// all writes share one device-write ordinal — they persist or fail as
    /// a unit (a hardware write transaction, e.g. page re-encryption). A
    /// torn fault at the group's ordinal degrades to a clean power-off:
    /// atomic groups never tear. Groups nest; only the outermost brackets.
    pub fn begin_atomic(&mut self) {
        self.group_depth += 1;
    }

    /// Closes an atomic write group (see [`Nvm::begin_atomic`]).
    pub fn end_atomic(&mut self) {
        self.group_depth = self.group_depth.saturating_sub(1);
        if self.group_depth == 0 {
            self.group_charged = false;
            if !self.open_group.is_empty() {
                let group = std::mem::take(&mut self.open_group);
                self.journal_push(group);
            }
        }
    }

    /// Appends one undo entry, bounding the journal to the WPQ depth.
    fn journal_push(&mut self, group: Vec<(u64, Vec<u8>)>) {
        if self.trace.enabled() {
            self.trace.bump("wpq_enqueues");
        }
        self.journal.push_back(group);
        if self.journal.len() > JOURNAL_DEPTH {
            // The oldest write has drained out of the WPQ to the media.
            self.journal.pop_front();
            if self.trace.enabled() {
                self.trace.bump("wpq_drains");
            }
        }
    }

    /// Records one WPQ-tail drop strike (kind 3) for the trace layer.
    fn record_wpq_drop(&mut self, group: &[(u64, Vec<u8>)], drop_index: u64) {
        if self.trace.enabled() {
            self.trace.bump("wpq_dropped");
            let addr = group.first().map(|(a, _)| *a).unwrap_or(0);
            self.trace.strike(drop_index, 3, addr);
        }
    }

    /// Records the pre-image of an imminent write while a hook is armed.
    fn journal_record(&mut self, addr: u64, len: usize) {
        let mut pre = vec![0u8; len];
        self.peek(addr, &mut pre);
        if self.group_depth > 0 {
            self.open_group.push((addr, pre));
        } else {
            self.journal_push(vec![(addr, pre)]);
        }
    }

    /// Raw media restore used by crash modelling: rewinds `addr` to a
    /// pre-crash image with no stats, no ordinal, and no fault-hook
    /// interaction. Rolling back dirty cached lines models *volatility* —
    /// bytes that never actually persisted — not device traffic, so it must
    /// stay invisible to a multi-phase fault plan that survived the power
    /// cycle (the recovery-phase ordinal domain starts with recovery's own
    /// first real write, not with the model's bookkeeping).
    pub fn rollback_bytes(&mut self, addr: u64, data: &[u8]) {
        self.poke(addr, data);
    }

    /// Raw media read: no stats, no fault interaction (internal/test use).
    fn peek(&self, addr: u64, buf: &mut [u8]) {
        let mut cursor = addr;
        let mut remaining = buf;
        while !remaining.is_empty() {
            let frame_base = cursor / FRAME_SIZE as u64;
            let offset = (cursor % FRAME_SIZE as u64) as usize;
            let take = remaining.len().min(FRAME_SIZE - offset);
            let (head, tail) = remaining.split_at_mut(take);
            match self.frames.get(&frame_base) {
                Some(frame) => head.copy_from_slice(&frame[offset..offset + take]),
                None => head.fill(0),
            }
            remaining = tail;
            cursor += take as u64;
        }
    }

    /// Raw media write: no stats, no fault interaction (internal/test use).
    fn poke(&mut self, addr: u64, data: &[u8]) {
        let mut cursor = addr;
        let mut remaining = data;
        while !remaining.is_empty() {
            let frame_base = cursor / FRAME_SIZE as u64;
            let offset = (cursor % FRAME_SIZE as u64) as usize;
            let take = remaining.len().min(FRAME_SIZE - offset);
            let frame = self
                .frames
                .entry(frame_base)
                .or_insert_with(|| Box::new([0u8; FRAME_SIZE]));
            frame[offset..offset + take].copy_from_slice(&remaining[..take]);
            remaining = &remaining[take..];
            cursor += take as u64;
        }
    }

    fn check(&self, addr: u64, len: usize) -> Result<(), NvmError> {
        if addr.checked_add(len as u64).is_none_or(|end| end > self.config.capacity_bytes) {
            return Err(NvmError::OutOfBounds {
                addr,
                len,
                capacity: self.config.capacity_bytes,
            });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`NvmError::OutOfBounds`] if the range exceeds the device, or
    /// [`NvmError::PowerFailure`] once an armed fault hook has cut power.
    pub fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), NvmError> {
        self.check(addr, buf.len())?;
        if self.powered_off {
            return Err(NvmError::PowerFailure { addr });
        }
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        if self.trace.enabled() {
            self.trace.bump("device_reads");
        }
        self.peek(addr, buf);
        Ok(())
    }

    /// Writes `data` starting at `addr`. The write is durable immediately:
    /// timing effects (write queues, persist stalls) are modelled by the
    /// memory controller, not the media.
    ///
    /// # Errors
    ///
    /// [`NvmError::OutOfBounds`] if the range exceeds the device, or
    /// [`NvmError::PowerFailure`] when an armed fault hook cuts power at (or
    /// before) this write.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), NvmError> {
        self.check(addr, data.len())?;
        if self.fault.is_some() {
            if self.powered_off {
                return Err(NvmError::PowerFailure { addr });
            }
            // Inside an atomic group only the first write consults the hook;
            // the rest of the group rides on the same ordinal.
            let action = if self.group_depth > 0 && self.group_charged {
                FaultAction::Apply
            } else {
                let seq = self.fault_seq;
                self.fault_seq += 1;
                if self.write_class == WriteClass::Eviction {
                    self.evict_seqs.push(seq);
                }
                if self.group_depth > 0 {
                    self.group_charged = true;
                }
                match self.fault.as_mut() {
                    Some(hook) => hook.on_write(seq, addr, data.len()),
                    None => FaultAction::Apply,
                }
            };
            match action {
                FaultAction::Apply => self.journal_record(addr, data.len()),
                FaultAction::PowerOff => {
                    self.powered_off = true;
                    if self.trace.enabled() {
                        self.trace.strike(self.fault_seq - 1, 0, addr);
                    }
                    return Err(NvmError::PowerFailure { addr });
                }
                FaultAction::Torn(half) => {
                    if self.group_depth > 0 {
                        // Atomic groups never tear: the transaction aborts
                        // wholesale before any byte lands.
                        self.powered_off = true;
                        if self.trace.enabled() {
                            self.trace.strike(self.fault_seq - 1, 0, addr);
                        }
                        return Err(NvmError::PowerFailure { addr });
                    }
                    if self.trace.enabled() {
                        let kind = match half {
                            TornHalf::First => 1,
                            TornHalf::Last => 2,
                        };
                        self.trace.strike(self.fault_seq - 1, kind, addr);
                    }
                    self.journal_record(addr, data.len());
                    let mut merged = vec![0u8; data.len()];
                    self.peek(addr, &mut merged);
                    for (i, b) in data.iter().enumerate() {
                        let line_off = ((addr + i as u64) % BLOCK_SIZE as u64) as usize;
                        let survives = match half {
                            TornHalf::First => line_off < BLOCK_SIZE / 2,
                            TornHalf::Last => line_off >= BLOCK_SIZE / 2,
                        };
                        if survives {
                            merged[i] = *b;
                        }
                    }
                    self.stats.writes += 1;
                    self.stats.bytes_written += data.len() as u64;
                    if self.trace.enabled() {
                        self.trace.bump("device_writes");
                    }
                    self.poke(addr, &merged);
                    self.powered_off = true;
                    return Err(NvmError::PowerFailure { addr });
                }
            }
        }
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        if self.trace.enabled() {
            self.trace.bump("device_writes");
        }
        self.poke(addr, data);
        Ok(())
    }

    /// Reads the 64-byte block at `addr`.
    ///
    /// # Errors
    ///
    /// [`NvmError::Misaligned`] if `addr` is not 64-byte aligned, or
    /// [`NvmError::OutOfBounds`].
    pub fn read_block(&mut self, addr: u64) -> Result<[u8; BLOCK_SIZE], NvmError> {
        if !addr.is_multiple_of(BLOCK_SIZE as u64) {
            return Err(NvmError::Misaligned { addr });
        }
        let mut out = [0u8; BLOCK_SIZE];
        self.read_bytes(addr, &mut out)?;
        Ok(out)
    }

    /// Writes the 64-byte block at `addr`.
    ///
    /// # Errors
    ///
    /// [`NvmError::Misaligned`] if `addr` is not 64-byte aligned, or
    /// [`NvmError::OutOfBounds`].
    pub fn write_block(&mut self, addr: u64, data: &[u8; BLOCK_SIZE]) -> Result<(), NvmError> {
        if !addr.is_multiple_of(BLOCK_SIZE as u64) {
            return Err(NvmError::Misaligned { addr });
        }
        self.write_bytes(addr, data)
    }

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// [`NvmError::OutOfBounds`] if the range exceeds the device.
    pub fn read_u64(&mut self, addr: u64) -> Result<u64, NvmError> {
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// [`NvmError::OutOfBounds`] if the range exceeds the device.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), NvmError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Flips one bit on the media — an *active physical attack* (splicing /
    /// corruption) helper for integrity tests. Out-of-bounds addresses panic
    /// since this is test machinery.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the device.
    pub fn tamper_flip_bit(&mut self, addr: u64, bit: u8) {
        assert!(addr < self.config.capacity_bytes, "tamper address out of range");
        // Raw media access: attacks are not device traffic and never
        // interact with an armed fault hook or the undo journal.
        let mut byte = [0u8];
        self.peek(addr, &mut byte);
        byte[0] ^= 1 << (bit % 8);
        self.poke(addr, &byte);
    }

    /// Number of 4 KiB frames currently backed (touched).
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    /// The trace-layer sink: device-traffic counters, WPQ-journal
    /// enqueue/drain counters, and fault-strike records. Disabled by default.
    pub fn trace(&self) -> &amnt_trace::CompTrace {
        &self.trace
    }

    /// Enables or disables trace-layer recording for this device.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    /// Drains the recorded fault strikes (counters are untouched) so the
    /// controller can promote them to timestamped trace events exactly once.
    pub fn take_trace_strikes(&mut self) -> Vec<amnt_trace::StrikeRecord> {
        self.trace.take_strikes()
    }

    /// Clears trace-layer counters and strike records (keeps the enabled
    /// flag); used when the tracer resets at region-of-interest starts.
    pub fn reset_trace(&mut self) {
        self.trace.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_until_written() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        assert_eq!(nvm.read_block(0).unwrap(), [0u8; 64]);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        let data: [u8; 64] = core::array::from_fn(|i| i as u8);
        nvm.write_block(0x1000, &data).unwrap();
        assert_eq!(nvm.read_block(0x1000).unwrap(), data);
    }

    #[test]
    fn data_survives_crash() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.write_block(0x40, &[9u8; 64]).unwrap();
        nvm.crash();
        assert_eq!(nvm.generation(), 1);
        assert_eq!(nvm.read_block(0x40).unwrap(), [9u8; 64]);
    }

    #[test]
    fn wpq_lanes_have_independent_ordinal_domains() {
        // Two devices on different lanes: ordinals advance independently,
        // and the lane tag survives a crash (it names the queue, not its
        // contents).
        let mut a = Nvm::new(NvmConfig::gib(1));
        let mut b = Nvm::new(NvmConfig::gib(1));
        a.set_lane(0);
        b.set_lane(1);
        a.arm_fault_hook(Box::new(FaultPlan::count_only()));
        b.arm_fault_hook(Box::new(FaultPlan::count_only()));
        for i in 0..5u64 {
            a.write_block(i * 64, &[1u8; 64]).unwrap();
        }
        b.write_block(0, &[2u8; 64]).unwrap();
        assert_eq!(a.device_write_ordinals(), 5);
        assert_eq!(b.device_write_ordinals(), 1, "lane 1 counts alone");
        assert_eq!((a.lane(), b.lane()), (0, 1));
        b.crash();
        assert_eq!(b.lane(), 1, "lane tag survives a power cycle");
        assert_eq!(b.device_write_ordinals(), 0, "ordinal domain restarts");
    }

    #[test]
    fn cross_frame_access() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        let addr = 4096 - 32; // straddles two frames
        let data = [0xAB; 64];
        nvm.write_bytes(addr, &data).unwrap();
        let mut back = [0u8; 64];
        nvm.read_bytes(addr, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(nvm.resident_frames(), 2);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        let cap = nvm.config().capacity_bytes;
        assert!(matches!(
            nvm.write_block(cap, &[0; 64]),
            Err(NvmError::OutOfBounds { .. })
        ));
        assert!(nvm.read_u64(cap - 4).is_err());
        // Boundary-exact access is fine.
        assert!(nvm.read_block(cap - 64).is_ok());
    }

    #[test]
    fn misaligned_block_rejected() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        assert_eq!(nvm.read_block(0x41).unwrap_err(), NvmError::Misaligned { addr: 0x41 });
        assert!(nvm.write_block(0x20, &[0; 64]).is_err());
    }

    #[test]
    fn stats_count_traffic() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.write_block(0, &[1; 64]).unwrap();
        nvm.read_block(0).unwrap();
        nvm.read_u64(8).unwrap();
        let s = nvm.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.bytes_written, 64);
        assert_eq!(s.bytes_read, 72);
    }

    #[test]
    fn tamper_flips_exactly_one_bit() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.write_block(0, &[0u8; 64]).unwrap();
        let before = nvm.stats().clone();
        nvm.tamper_flip_bit(3, 5);
        assert_eq!(*nvm.stats(), before, "attacks are not device traffic");
        let block = nvm.read_block(0).unwrap();
        assert_eq!(block[3], 1 << 5);
        assert!(block.iter().enumerate().all(|(i, b)| i == 3 || *b == 0));
    }

    #[test]
    fn timing_conversion() {
        let cfg = NvmConfig::paper_default();
        assert_eq!(cfg.read_cycles(), 610);
        assert_eq!(cfg.write_cycles(), 782);
    }

    #[test]
    fn u64_roundtrip() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.write_u64(0x123, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(nvm.read_u64(0x123).unwrap(), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn crash_after_k_fail_stops_until_power_cycle() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.arm_fault_hook(Box::new(FaultPlan::crash_after(2)));
        nvm.write_block(0, &[1; 64]).unwrap();
        nvm.write_block(64, &[2; 64]).unwrap();
        // The third write is where power fails: nothing lands.
        assert_eq!(
            nvm.write_block(128, &[3; 64]),
            Err(NvmError::PowerFailure { addr: 128 })
        );
        assert!(nvm.powered_off());
        // Fail-stop: reads and further writes also fail.
        assert!(matches!(nvm.read_block(0), Err(NvmError::PowerFailure { .. })));
        assert!(nvm.write_block(192, &[4; 64]).is_err());
        nvm.crash();
        assert!(nvm.dirty_shutdown());
        assert!(!nvm.fault_armed());
        // Power restored; the surviving prefix is intact, the cut write is not.
        assert_eq!(nvm.read_block(0).unwrap(), [1; 64]);
        assert_eq!(nvm.read_block(64).unwrap(), [2; 64]);
        assert_eq!(nvm.read_block(128).unwrap(), [0; 64]);
        // A later clean crash clears the dirty-shutdown flag.
        nvm.crash();
        assert!(!nvm.dirty_shutdown());
    }

    #[test]
    fn torn_write_persists_exactly_one_half_per_line() {
        for (half, lo, hi) in [(TornHalf::First, 0xAB, 0x00), (TornHalf::Last, 0x00, 0xAB)] {
            let mut nvm = Nvm::new(NvmConfig::gib(1));
            nvm.arm_fault_hook(Box::new(FaultPlan::torn_after(0, half)));
            assert!(nvm.write_block(64, &[0xAB; 64]).is_err());
            nvm.crash();
            let block = nvm.read_block(64).unwrap();
            assert!(block[..32].iter().all(|&b| b == lo), "{half:?}: {block:?}");
            assert!(block[32..].iter().all(|&b| b == hi), "{half:?}: {block:?}");
        }
    }

    #[test]
    fn torn_write_tears_every_overlapped_line_of_a_span() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.arm_fault_hook(Box::new(FaultPlan::torn_after(0, TornHalf::First)));
        // A 128-byte span covering two whole lines: each line keeps only its
        // own first half.
        assert!(nvm.write_bytes(0, &[0xCD; 128]).is_err());
        nvm.crash();
        for line in 0..2u64 {
            let block = nvm.read_block(line * 64).unwrap();
            assert!(block[..32].iter().all(|&b| b == 0xCD));
            assert!(block[32..].iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn dropped_wpq_tail_undoes_the_newest_writes() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.write_block(0, &[1; 64]).unwrap();
        nvm.arm_fault_hook(Box::new(FaultPlan::drop_tail(2)));
        nvm.write_block(0, &[2; 64]).unwrap();
        nvm.write_block(64, &[3; 64]).unwrap();
        nvm.write_block(128, &[4; 64]).unwrap();
        nvm.crash();
        assert!(nvm.dirty_shutdown());
        // The two newest writes rolled back; the oldest survived.
        assert_eq!(nvm.read_block(0).unwrap(), [2; 64]);
        assert_eq!(nvm.read_block(64).unwrap(), [0; 64]);
        assert_eq!(nvm.read_block(128).unwrap(), [0; 64]);
    }

    #[test]
    fn atomic_group_consumes_one_ordinal_and_never_tears() {
        // All-or-nothing under a clean crash at the group's ordinal.
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.arm_fault_hook(Box::new(FaultPlan::crash_after(1)));
        nvm.write_block(0, &[1; 64]).unwrap(); // ordinal 0
        nvm.begin_atomic(); // ordinal 1: the crash ordinal
        let r1 = nvm.write_block(64, &[2; 64]);
        let r2 = nvm.write_block(128, &[3; 64]);
        nvm.end_atomic();
        assert!(r1.is_err() && r2.is_err());
        nvm.crash();
        assert_eq!(nvm.read_block(64).unwrap(), [0; 64]);
        assert_eq!(nvm.read_block(128).unwrap(), [0; 64]);

        // Past the crash ordinal the whole group lands and counts once.
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.arm_fault_hook(Box::new(FaultPlan::count_only()));
        nvm.begin_atomic();
        nvm.write_block(0, &[7; 64]).unwrap();
        nvm.write_block(64, &[8; 64]).unwrap();
        nvm.end_atomic();
        assert_eq!(nvm.device_write_ordinals(), 1);

        // A torn fault at the group ordinal degrades to clean power-off.
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.arm_fault_hook(Box::new(FaultPlan::torn_after(0, TornHalf::First)));
        nvm.begin_atomic();
        assert!(nvm.write_block(0, &[9; 64]).is_err());
        nvm.end_atomic();
        nvm.crash();
        assert_eq!(nvm.read_block(0).unwrap(), [0; 64]);
    }

    #[test]
    fn wpq_tail_drop_undoes_an_atomic_group_as_a_unit() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.arm_fault_hook(Box::new(FaultPlan::drop_tail(1)));
        nvm.write_block(0, &[1; 64]).unwrap();
        nvm.begin_atomic();
        nvm.write_block(64, &[2; 64]).unwrap();
        nvm.write_block(128, &[3; 64]).unwrap();
        nvm.end_atomic();
        nvm.crash();
        // Dropping one ordinal removed the whole group, not half of it.
        assert_eq!(nvm.read_block(0).unwrap(), [1; 64]);
        assert_eq!(nvm.read_block(64).unwrap(), [0; 64]);
        assert_eq!(nvm.read_block(128).unwrap(), [0; 64]);
    }

    #[test]
    fn tamper_ignores_fault_state() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.arm_fault_hook(Box::new(FaultPlan::count_only()));
        nvm.tamper_flip_bit(5, 0);
        assert_eq!(nvm.device_write_ordinals(), 0, "attacks consume no ordinals");
        nvm.disarm_fault_hook();
        assert_eq!(nvm.read_block(0).unwrap()[5], 1);
    }

    #[test]
    fn phased_hook_survives_the_crash_into_a_fresh_ordinal_domain() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.arm_fault_hook(Box::new(PhasedPlan::two_phase(
            FaultPlan::crash_after(1),
            FaultPlan::crash_after(0),
        )));
        nvm.write_block(0, &[1; 64]).unwrap();
        assert!(nvm.write_block(64, &[2; 64]).is_err(), "phase 0 crash at ordinal 1");
        nvm.crash();
        // The hook survived the power cycle; the ordinal domain restarted,
        // so the recovery phase's very first write is the crash point.
        assert!(nvm.fault_armed());
        assert_eq!(nvm.device_write_ordinals(), 0);
        assert!(nvm.write_block(128, &[3; 64]).is_err(), "phase 1 crash at ordinal 0");
        nvm.crash();
        // Phases exhausted: the hook is consumed like a plain FaultPlan.
        assert!(!nvm.fault_armed());
        nvm.write_block(128, &[3; 64]).unwrap();
        assert_eq!(nvm.read_block(128).unwrap(), [3; 64]);
    }

    #[test]
    fn eviction_class_ordinals_are_recorded_per_domain() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.arm_fault_hook(Box::new(PhasedPlan::two_phase(
            FaultPlan::count_only(),
            FaultPlan::count_only(),
        )));
        nvm.write_block(0, &[1; 64]).unwrap();
        nvm.set_write_class(WriteClass::Eviction);
        nvm.write_block(64, &[2; 64]).unwrap();
        nvm.write_block(128, &[3; 64]).unwrap();
        nvm.set_write_class(WriteClass::Protocol);
        nvm.write_block(192, &[4; 64]).unwrap();
        assert_eq!(nvm.eviction_write_ordinals(), &[1, 2]);
        nvm.crash();
        // A crash starts a fresh domain: class resets, records clear.
        assert_eq!(nvm.eviction_write_ordinals(), &[] as &[u64]);
        nvm.write_block(0, &[5; 64]).unwrap();
        assert_eq!(nvm.eviction_write_ordinals(), &[] as &[u64]);
    }

    #[test]
    fn address_math_near_u64_max_rejects_without_wrapping() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        // addr + len overflows u64: must be OutOfBounds, not a wrapped hit.
        let mut buf = [0u8; 64];
        assert!(matches!(
            nvm.read_bytes(u64::MAX - 16, &mut buf),
            Err(NvmError::OutOfBounds { .. })
        ));
        assert!(matches!(
            nvm.write_bytes(u64::MAX, &[1, 2, 3]),
            Err(NvmError::OutOfBounds { .. })
        ));
        // Exactly at the overflow boundary: addr + len == u64::MAX + 1.
        assert!(matches!(
            nvm.write_bytes(u64::MAX - 63, &[0u8; 64]),
            Err(NvmError::OutOfBounds { .. })
        ));
        // Zero-length access at u64::MAX: end == u64::MAX > capacity.
        assert!(nvm.read_bytes(u64::MAX, &mut []).is_err());
        // Zero-length access exactly at capacity is in bounds.
        let cap = nvm.config().capacity_bytes;
        assert!(nvm.read_bytes(cap, &mut []).is_ok());
        assert_eq!(nvm.resident_frames(), 0, "rejected accesses materialize nothing");
    }

    #[test]
    fn never_touched_frames_read_zero_across_crash_and_stay_unmaterialized() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.write_block(0x40, &[7u8; 64]).unwrap();
        nvm.crash();
        // A never-touched frame reads zero after the crash...
        assert_eq!(nvm.read_block(0x8000).unwrap(), [0u8; 64]);
        // ...and the read did not materialize it.
        assert_eq!(nvm.resident_frames(), 1);
        assert!(nvm.frame_touched(0x40));
        assert!(!nvm.frame_touched(0x8000));
    }

    #[test]
    fn rollback_bytes_on_unmaterialized_frame_backs_it() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        assert_eq!(nvm.resident_frames(), 0);
        nvm.rollback_bytes(0x2000, &[5u8; 16]);
        assert!(nvm.frame_touched(0x2000));
        let mut buf = [0u8; 16];
        nvm.read_bytes(0x2000, &mut buf).unwrap();
        assert_eq!(buf, [5u8; 16]);
        // Rolling back an all-zero image also backs the frame (the frame
        // was written to at some point pre-crash, so it counts as touched).
        nvm.rollback_bytes(0x5000, &[0u8; 64]);
        assert!(nvm.frame_touched(0x5000));
        assert_eq!(nvm.resident_frames(), 2);
    }

    #[test]
    fn touched_frames_enumerate_in_address_order_regardless_of_touch_order() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        for addr in [0x9000u64, 0x1000, 0x40_0000, 0x3000] {
            nvm.write_block(addr, &[1u8; 64]).unwrap();
        }
        let bases: Vec<u64> = nvm.touched_frames().collect();
        assert_eq!(bases, vec![0x1000, 0x3000, 0x9000, 0x40_0000]);
        // Ranged enumeration clips to overlap, end-exclusive.
        let mid: Vec<u64> = nvm.touched_frames_in(0x1040, 0x9001).collect();
        assert_eq!(mid, vec![0x1000, 0x3000, 0x9000]);
        let none: Vec<u64> = nvm.touched_frames_in(0x4000, 0x9000).collect();
        assert_eq!(none, vec![] as Vec<u64>);
    }

    #[test]
    fn media_images_compare_byte_exactly() {
        let mut a = Nvm::new(NvmConfig::gib(1));
        let mut b = Nvm::new(NvmConfig::gib(1));
        a.write_block(0x40, &[7; 64]).unwrap();
        b.write_block(0x40, &[7; 64]).unwrap();
        // Touching a frame with zeros must not distinguish the images.
        b.write_block(0x9000, &[0; 64]).unwrap();
        assert_eq!(a.media_image(), b.media_image());
        b.write_block(0x9000, &[1; 64]).unwrap();
        assert_ne!(a.media_image(), b.media_image());
    }
}

