//! # amnt-nvm
//!
//! A byte-addressable storage-class-memory (SCM/PCM) device model.
//!
//! The device is *functional* — it stores real bytes (sparsely, 4 KiB frames
//! allocated on first touch) — and *timed* — it knows its read/write
//! latencies (Table 1 of the paper: 305 ns read, 391 ns write for DDR-based
//! PCM) and counts traffic. Crucially it is *non-volatile*: [`Nvm::crash`]
//! leaves the media intact and only bumps a generation counter; volatility
//! lives in the caches and controller registers built on top.
//!
//! ## Example
//!
//! ```
//! use amnt_nvm::{Nvm, NvmConfig};
//!
//! let mut nvm = Nvm::new(NvmConfig::gib(1));
//! nvm.write_block(0x40, &[7u8; 64])?;
//! nvm.crash(); // power failure: media survives
//! assert_eq!(nvm.read_block(0x40)?, [7u8; 64]);
//! # Ok::<(), amnt_nvm::NvmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

mod start_gap;
pub use start_gap::StartGap;

/// Size of a memory block (cache line) in bytes.
pub const BLOCK_SIZE: usize = 64;
/// Size of a backing frame in bytes.
const FRAME_SIZE: usize = 4096;

/// Device geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvmConfig {
    /// Device capacity in bytes.
    pub capacity_bytes: u64,
    /// Media read latency in nanoseconds (Table 1: 305 ns).
    pub read_ns: f64,
    /// Media write latency in nanoseconds (Table 1: 391 ns).
    pub write_ns: f64,
    /// Core clock used to convert latencies to cycles.
    pub clock_ghz: f64,
}

impl NvmConfig {
    /// A device of `gib` GiB with the paper's PCM timing at a 2 GHz core clock.
    pub fn gib(gib: u64) -> Self {
        NvmConfig {
            capacity_bytes: gib * 1024 * 1024 * 1024,
            read_ns: 305.0,
            write_ns: 391.0,
            clock_ghz: 2.0,
        }
    }

    /// The paper's default 8 GiB PCM device (Table 1).
    pub fn paper_default() -> Self {
        Self::gib(8)
    }

    /// Media read latency in core cycles.
    pub fn read_cycles(&self) -> u64 {
        (self.read_ns * self.clock_ghz).round() as u64
    }

    /// Media write latency in core cycles.
    pub fn write_cycles(&self) -> u64 {
        (self.write_ns * self.clock_ghz).round() as u64
    }
}

impl Default for NvmConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Errors returned by device accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmError {
    /// The access falls (partly) outside the device.
    OutOfBounds {
        /// Requested address.
        addr: u64,
        /// Requested length.
        len: usize,
        /// Device capacity.
        capacity: u64,
    },
    /// A block access was not 64-byte aligned.
    Misaligned {
        /// Requested address.
        addr: u64,
    },
}

impl fmt::Display for NvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmError::OutOfBounds { addr, len, capacity } => write!(
                f,
                "access of {len} bytes at {addr:#x} exceeds device capacity {capacity:#x}"
            ),
            NvmError::Misaligned { addr } => {
                write!(f, "block access at {addr:#x} is not 64-byte aligned")
            }
        }
    }
}

impl std::error::Error for NvmError {}

/// Traffic counters for the device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NvmStats {
    /// Block/byte-range reads issued.
    pub reads: u64,
    /// Block/byte-range writes issued.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

/// The SCM device.
///
/// See the crate-level docs for the modelling contract and an example.
#[derive(Debug, Clone, Default)]
pub struct Nvm {
    config: NvmConfig,
    frames: HashMap<u64, Box<[u8; FRAME_SIZE]>>,
    stats: NvmStats,
    /// Bumped on every crash; lets tests assert they really crossed one.
    generation: u64,
}

impl Nvm {
    /// Creates a device; all bytes read as zero until written.
    pub fn new(config: NvmConfig) -> Self {
        Nvm { config, frames: HashMap::new(), stats: NvmStats::default(), generation: 0 }
    }

    /// The device configuration.
    pub fn config(&self) -> NvmConfig {
        self.config
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &NvmStats {
        &self.stats
    }

    /// Resets traffic statistics (e.g. at a region-of-interest boundary).
    pub fn reset_stats(&mut self) {
        self.stats = NvmStats::default();
    }

    /// How many crashes this device has survived.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Power failure: media persists, generation bumps.
    ///
    /// Volatile state (caches, on-chip volatile registers) is owned by the
    /// layers above and must be cleared by them.
    pub fn crash(&mut self) {
        self.generation += 1;
    }

    fn check(&self, addr: u64, len: usize) -> Result<(), NvmError> {
        if addr.checked_add(len as u64).is_none_or(|end| end > self.config.capacity_bytes) {
            return Err(NvmError::OutOfBounds {
                addr,
                len,
                capacity: self.config.capacity_bytes,
            });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`NvmError::OutOfBounds`] if the range exceeds the device.
    pub fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), NvmError> {
        self.check(addr, buf.len())?;
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        let mut cursor = addr;
        let mut remaining = buf;
        while !remaining.is_empty() {
            let frame_base = cursor / FRAME_SIZE as u64;
            let offset = (cursor % FRAME_SIZE as u64) as usize;
            let take = remaining.len().min(FRAME_SIZE - offset);
            let (head, tail) = remaining.split_at_mut(take);
            match self.frames.get(&frame_base) {
                Some(frame) => head.copy_from_slice(&frame[offset..offset + take]),
                None => head.fill(0),
            }
            remaining = tail;
            cursor += take as u64;
        }
        Ok(())
    }

    /// Writes `data` starting at `addr`. The write is durable immediately:
    /// timing effects (write queues, persist stalls) are modelled by the
    /// memory controller, not the media.
    ///
    /// # Errors
    ///
    /// [`NvmError::OutOfBounds`] if the range exceeds the device.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), NvmError> {
        self.check(addr, data.len())?;
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        let mut cursor = addr;
        let mut remaining = data;
        while !remaining.is_empty() {
            let frame_base = cursor / FRAME_SIZE as u64;
            let offset = (cursor % FRAME_SIZE as u64) as usize;
            let take = remaining.len().min(FRAME_SIZE - offset);
            let frame = self
                .frames
                .entry(frame_base)
                .or_insert_with(|| Box::new([0u8; FRAME_SIZE]));
            frame[offset..offset + take].copy_from_slice(&remaining[..take]);
            remaining = &remaining[take..];
            cursor += take as u64;
        }
        Ok(())
    }

    /// Reads the 64-byte block at `addr`.
    ///
    /// # Errors
    ///
    /// [`NvmError::Misaligned`] if `addr` is not 64-byte aligned, or
    /// [`NvmError::OutOfBounds`].
    pub fn read_block(&mut self, addr: u64) -> Result<[u8; BLOCK_SIZE], NvmError> {
        if !addr.is_multiple_of(BLOCK_SIZE as u64) {
            return Err(NvmError::Misaligned { addr });
        }
        let mut out = [0u8; BLOCK_SIZE];
        self.read_bytes(addr, &mut out)?;
        Ok(out)
    }

    /// Writes the 64-byte block at `addr`.
    ///
    /// # Errors
    ///
    /// [`NvmError::Misaligned`] if `addr` is not 64-byte aligned, or
    /// [`NvmError::OutOfBounds`].
    pub fn write_block(&mut self, addr: u64, data: &[u8; BLOCK_SIZE]) -> Result<(), NvmError> {
        if !addr.is_multiple_of(BLOCK_SIZE as u64) {
            return Err(NvmError::Misaligned { addr });
        }
        self.write_bytes(addr, data)
    }

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// [`NvmError::OutOfBounds`] if the range exceeds the device.
    pub fn read_u64(&mut self, addr: u64) -> Result<u64, NvmError> {
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// [`NvmError::OutOfBounds`] if the range exceeds the device.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), NvmError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Flips one bit on the media — an *active physical attack* (splicing /
    /// corruption) helper for integrity tests. Out-of-bounds addresses panic
    /// since this is test machinery.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the device.
    pub fn tamper_flip_bit(&mut self, addr: u64, bit: u8) {
        assert!(addr < self.config.capacity_bytes, "tamper address out of range");
        let mut byte = [0u8];
        self.read_bytes(addr, &mut byte).expect("in range");
        byte[0] ^= 1 << (bit % 8);
        self.write_bytes(addr, &byte).expect("in range");
        // Attacks are not device traffic.
        self.stats.reads -= 1;
        self.stats.writes -= 1;
        self.stats.bytes_read -= 1;
        self.stats.bytes_written -= 1;
    }

    /// Number of 4 KiB frames currently backed (touched).
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_until_written() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        assert_eq!(nvm.read_block(0).unwrap(), [0u8; 64]);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        let data: [u8; 64] = core::array::from_fn(|i| i as u8);
        nvm.write_block(0x1000, &data).unwrap();
        assert_eq!(nvm.read_block(0x1000).unwrap(), data);
    }

    #[test]
    fn data_survives_crash() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.write_block(0x40, &[9u8; 64]).unwrap();
        nvm.crash();
        assert_eq!(nvm.generation(), 1);
        assert_eq!(nvm.read_block(0x40).unwrap(), [9u8; 64]);
    }

    #[test]
    fn cross_frame_access() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        let addr = 4096 - 32; // straddles two frames
        let data = [0xAB; 64];
        nvm.write_bytes(addr, &data).unwrap();
        let mut back = [0u8; 64];
        nvm.read_bytes(addr, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(nvm.resident_frames(), 2);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        let cap = nvm.config().capacity_bytes;
        assert!(matches!(
            nvm.write_block(cap, &[0; 64]),
            Err(NvmError::OutOfBounds { .. })
        ));
        assert!(nvm.read_u64(cap - 4).is_err());
        // Boundary-exact access is fine.
        assert!(nvm.read_block(cap - 64).is_ok());
    }

    #[test]
    fn misaligned_block_rejected() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        assert_eq!(nvm.read_block(0x41).unwrap_err(), NvmError::Misaligned { addr: 0x41 });
        assert!(nvm.write_block(0x20, &[0; 64]).is_err());
    }

    #[test]
    fn stats_count_traffic() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.write_block(0, &[1; 64]).unwrap();
        nvm.read_block(0).unwrap();
        nvm.read_u64(8).unwrap();
        let s = nvm.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.bytes_written, 64);
        assert_eq!(s.bytes_read, 72);
    }

    #[test]
    fn tamper_flips_exactly_one_bit() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.write_block(0, &[0u8; 64]).unwrap();
        let before = nvm.stats().clone();
        nvm.tamper_flip_bit(3, 5);
        assert_eq!(*nvm.stats(), before, "attacks are not device traffic");
        let block = nvm.read_block(0).unwrap();
        assert_eq!(block[3], 1 << 5);
        assert!(block.iter().enumerate().all(|(i, b)| i == 3 || *b == 0));
    }

    #[test]
    fn timing_conversion() {
        let cfg = NvmConfig::paper_default();
        assert_eq!(cfg.read_cycles(), 610);
        assert_eq!(cfg.write_cycles(), 782);
    }

    #[test]
    fn u64_roundtrip() {
        let mut nvm = Nvm::new(NvmConfig::gib(1));
        nvm.write_u64(0x123, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(nvm.read_u64(0x123).unwrap(), 0xdead_beef_cafe_f00d);
    }
}

